(* Observability layer: monotonic phase timers with named scopes, lightweight
   kernel counters, and JSON / table emitters.

   Design constraints (see DESIGN.md "Profiling layer"):
   - Disabled is the default, and disabled must be free on kernel hot paths:
     every recording site is guarded by [enabled ()], a single load of a
     mutable bool, and the counters are mutable int fields bumped in place,
     so no allocation happens whether profiling is on or off.
   - Timers use the raw monotonic clock (CLOCK_MONOTONIC via the bechamel
     stub, an [@@noalloc] external returning an unboxed int64), so scope
     accounting survives NTP adjustments and never allocates either.
   - Scopes are reentrant: nested [start]/[stop] of the same name count the
     outermost span once, which lets a facade time "symbolic" around an
     inspector that also times "symbolic" internally. *)

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* ------------------------------ Counters ------------------------------ *)

type counters = {
  mutable flops : int;  (** useful floating-point operations executed *)
  mutable nnz_touched : int;  (** matrix nonzeros read/written by kernels *)
  mutable iters_pruned : int;  (** loop iterations removed by VI-Prune *)
  mutable supernodes : int;  (** supernodes produced by VS-Block detection *)
  mutable supernode_cols : int;  (** columns covered by those supernodes *)
  mutable levels : int;  (** level sets built by trisolve_parallel *)
  mutable max_level_width : int;  (** widest level set seen *)
  mutable cache_hits : int;  (** compilation-cache lookups served *)
  mutable cache_misses : int;  (** compilation-cache lookups that compiled *)
  mutable orderings : int;  (** fill-reducing orderings computed *)
  mutable pool_runs : int;  (** parallel dispatches through the domain pool *)
  mutable pool_tasks : int;  (** worker tasks executed across those runs *)
  mutable pool_max_workers : int;  (** widest dispatch seen *)
  mutable pool_imbalance_pct : int;
      (** worst per-dispatch imbalance, max/mean worker time as an integer
          percentage (100 = perfectly balanced; 0 = never measured) *)
  mutable native_compiles : int;
      (** generated-C kernels compiled to .so by the native engine *)
  mutable native_so_hits : int;
      (** native loads served from the memory/disk .so cache *)
  mutable native_fallbacks : int;
      (** native requests that fell back to the OCaml executor *)
  mutable updown_path_hits : int;
      (** rank-update etree paths served from the memoized table *)
  mutable updown_path_misses : int;
      (** rank-update etree paths computed (first use of a jmin) *)
  mutable updown_escalations : int;
      (** rank updates that outgrew the factor pattern and recompiled *)
}

let fresh_counters () =
  {
    flops = 0;
    nnz_touched = 0;
    iters_pruned = 0;
    supernodes = 0;
    supernode_cols = 0;
    levels = 0;
    max_level_width = 0;
    cache_hits = 0;
    cache_misses = 0;
    orderings = 0;
    pool_runs = 0;
    pool_tasks = 0;
    pool_max_workers = 0;
    pool_imbalance_pct = 0;
    native_compiles = 0;
    native_so_hits = 0;
    native_fallbacks = 0;
    updown_path_hits = 0;
    updown_path_misses = 0;
    updown_escalations = 0;
  }

let counters = fresh_counters ()

(* Per-domain counter cells. The global [counters] record is the main
   domain's cell; every other domain (pool workers) lazily gets a private
   cell on first use, registered here so {!merge_cells} can fold it back
   into the global record at a quiescent point — the pool calls it right
   after its completion barrier, when all workers are parked. Worker-side
   bumps through {!cell} therefore never race the main domain, and totals
   are exact instead of lossy (plain [mutable int] read-modify-write from
   several domains drops updates). *)

let zero_counters (c : counters) =
  c.flops <- 0;
  c.nnz_touched <- 0;
  c.iters_pruned <- 0;
  c.supernodes <- 0;
  c.supernode_cols <- 0;
  c.levels <- 0;
  c.max_level_width <- 0;
  c.cache_hits <- 0;
  c.cache_misses <- 0;
  c.orderings <- 0;
  c.pool_runs <- 0;
  c.pool_tasks <- 0;
  c.pool_max_workers <- 0;
  c.pool_imbalance_pct <- 0;
  c.native_compiles <- 0;
  c.native_so_hits <- 0;
  c.native_fallbacks <- 0;
  c.updown_path_hits <- 0;
  c.updown_path_misses <- 0;
  c.updown_escalations <- 0

let cells_lock = Mutex.create ()
let worker_cells : counters list ref = ref []

let cell_key : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = fresh_counters () in
      Mutex.lock cells_lock;
      worker_cells := c :: !worker_cells;
      Mutex.unlock cells_lock;
      c)

(* Pin the main domain's cell to the global record, so main-domain bumps
   through [cell ()] are indistinguishable from direct field updates. *)
let () = Domain.DLS.set cell_key counters

let cell () = Domain.DLS.get cell_key

let merge_cells () =
  Mutex.lock cells_lock;
  List.iter
    (fun (c : counters) ->
      counters.flops <- counters.flops + c.flops;
      counters.nnz_touched <- counters.nnz_touched + c.nnz_touched;
      counters.iters_pruned <- counters.iters_pruned + c.iters_pruned;
      counters.supernodes <- counters.supernodes + c.supernodes;
      counters.supernode_cols <- counters.supernode_cols + c.supernode_cols;
      counters.levels <- counters.levels + c.levels;
      counters.max_level_width <- max counters.max_level_width c.max_level_width;
      counters.cache_hits <- counters.cache_hits + c.cache_hits;
      counters.cache_misses <- counters.cache_misses + c.cache_misses;
      counters.orderings <- counters.orderings + c.orderings;
      counters.pool_runs <- counters.pool_runs + c.pool_runs;
      counters.pool_tasks <- counters.pool_tasks + c.pool_tasks;
      counters.pool_max_workers <- max counters.pool_max_workers c.pool_max_workers;
      counters.pool_imbalance_pct <-
        max counters.pool_imbalance_pct c.pool_imbalance_pct;
      counters.native_compiles <- counters.native_compiles + c.native_compiles;
      counters.native_so_hits <- counters.native_so_hits + c.native_so_hits;
      counters.native_fallbacks <- counters.native_fallbacks + c.native_fallbacks;
      counters.updown_path_hits <- counters.updown_path_hits + c.updown_path_hits;
      counters.updown_path_misses <-
        counters.updown_path_misses + c.updown_path_misses;
      counters.updown_escalations <-
        counters.updown_escalations + c.updown_escalations;
      zero_counters c)
    !worker_cells;
  Mutex.unlock cells_lock

let avg_supernode_width () =
  if counters.supernodes = 0 then 0.0
  else float_of_int counters.supernode_cols /. float_of_int counters.supernodes

(* ------------------------------- Timers ------------------------------- *)

type scope = {
  mutable total_ns : int64;
  mutable entries : int;
  mutable depth : int;
  mutable started : int64;
}

let scopes_tbl : (string, scope) Hashtbl.t = Hashtbl.create 16

let find name =
  match Hashtbl.find_opt scopes_tbl name with
  | Some s -> s
  | None ->
      let s = { total_ns = 0L; entries = 0; depth = 0; started = 0L } in
      Hashtbl.add scopes_tbl name s;
      s

let now_ns () = Monotonic_clock.now ()

(* Monotonic wall-clock for callers that time spans themselves (the bench
   harness, the facade's [symbolic_seconds]): immune to NTP slews, unlike
   [Unix.gettimeofday]. *)
let now_seconds () = Int64.to_float (now_ns ()) /. 1e9

let start name =
  if !on then begin
    let s = find name in
    s.depth <- s.depth + 1;
    if s.depth = 1 then s.started <- now_ns ()
  end

let stop name =
  if !on then begin
    let s = find name in
    if s.depth > 0 then begin
      s.depth <- s.depth - 1;
      if s.depth = 0 then begin
        s.total_ns <- Int64.add s.total_ns (Int64.sub (now_ns ()) s.started);
        s.entries <- s.entries + 1
      end
    end
  end

let time name f =
  if !on then begin
    start name;
    Fun.protect ~finally:(fun () -> stop name) f
  end
  else f ()

let seconds_of_ns ns = Int64.to_float ns /. 1e9

(* Accumulated time including the in-flight (still-open) outermost span, so
   a snapshot taken mid-phase — the CLI printing a table while a solve is
   running under the same scope — does not under-report elapsed time. *)
let live_total_ns s =
  if s.depth > 0 then Int64.add s.total_ns (Int64.sub (now_ns ()) s.started)
  else s.total_ns

let scope_seconds name =
  match Hashtbl.find_opt scopes_tbl name with
  | None -> 0.0
  | Some s -> seconds_of_ns (live_total_ns s)

let scope_entries name =
  match Hashtbl.find_opt scopes_tbl name with None -> 0 | Some s -> s.entries

let scopes () =
  Hashtbl.fold
    (fun name s acc -> (name, seconds_of_ns (live_total_ns s), s.entries) :: acc)
    scopes_tbl []
  |> List.sort compare

let reset () =
  zero_counters counters;
  Mutex.lock cells_lock;
  List.iter zero_counters !worker_cells;
  Mutex.unlock cells_lock;
  Hashtbl.reset scopes_tbl

(* ------------------------------ Emitters ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* JSON has no inf/nan; emit null for non-finite values. *)
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
        else Buffer.add_string buf "null"
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf

  (* Recursive-descent parser for the subset of JSON the emitter above
     produces (which is all of JSON minus exotic number forms). Added for
     the perf-regression gate, which must read committed BENCH_*.json
     baselines back. *)

  exception Parse_error of string

  let of_string (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\x00' in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let utf8_add buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "dangling escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'; advance ()
                 | '\\' -> Buffer.add_char buf '\\'; advance ()
                 | '/' -> Buffer.add_char buf '/'; advance ()
                 | 'n' -> Buffer.add_char buf '\n'; advance ()
                 | 't' -> Buffer.add_char buf '\t'; advance ()
                 | 'r' -> Buffer.add_char buf '\r'; advance ()
                 | 'b' -> Buffer.add_char buf '\b'; advance ()
                 | 'f' -> Buffer.add_char buf '\012'; advance ()
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let hex = String.sub s (!pos + 1) 4 in
                     (match int_of_string_opt ("0x" ^ hex) with
                     | None -> fail "invalid \\u escape"
                     | Some code ->
                         utf8_add buf code;
                         pos := !pos + 5)
                 | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
              go ()
          | c ->
              Buffer.add_char buf c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = '-' then advance ();
      let is_float = ref false in
      let continue = ref true in
      while !continue && !pos < n do
        match s.[!pos] with
        | '0' .. '9' -> advance ()
        | '.' | 'e' | 'E' | '+' | '-' ->
            is_float := true;
            advance ()
        | _ -> continue := false
      done;
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail (Printf.sprintf "bad number %S" text))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let kvs = ref [] in
            let continue = ref true in
            while !continue do
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              kvs := (k, v) :: !kvs;
              skip_ws ();
              match peek () with
              | ',' -> advance ()
              | '}' ->
                  advance ();
                  continue := false
              | _ -> fail "expected ',' or '}'"
            done;
            Obj (List.rev !kvs)
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            List []
          end
          else begin
            let xs = ref [] in
            let continue = ref true in
            while !continue do
              let v = parse_value () in
              xs := v :: !xs;
              skip_ws ();
              match peek () with
              | ',' -> advance ()
              | ']' ->
                  advance ();
                  continue := false
              | _ -> fail "expected ',' or ']'"
            done;
            List (List.rev !xs)
          end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> parse_number ()
      | _ -> fail "unexpected character"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing content";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

let counters_json () =
  Json.Obj
    [
      ("flops", Json.Int counters.flops);
      ("nnz_touched", Json.Int counters.nnz_touched);
      ("iters_pruned", Json.Int counters.iters_pruned);
      ("supernodes", Json.Int counters.supernodes);
      ("supernode_cols", Json.Int counters.supernode_cols);
      ("avg_supernode_width", Json.Float (avg_supernode_width ()));
      ("levels", Json.Int counters.levels);
      ("max_level_width", Json.Int counters.max_level_width);
      ("cache_hits", Json.Int counters.cache_hits);
      ("cache_misses", Json.Int counters.cache_misses);
      ("orderings", Json.Int counters.orderings);
      ("pool_runs", Json.Int counters.pool_runs);
      ("pool_tasks", Json.Int counters.pool_tasks);
      ("pool_max_workers", Json.Int counters.pool_max_workers);
      ("pool_imbalance_pct", Json.Int counters.pool_imbalance_pct);
      ("native_compiles", Json.Int counters.native_compiles);
      ("native_so_hits", Json.Int counters.native_so_hits);
      ("native_fallbacks", Json.Int counters.native_fallbacks);
      ("updown_path_hits", Json.Int counters.updown_path_hits);
      ("updown_path_misses", Json.Int counters.updown_path_misses);
      ("updown_escalations", Json.Int counters.updown_escalations);
    ]

let phases_json () =
  Json.Obj
    (List.map
       (fun (name, secs, entries) ->
         ( name,
           Json.Obj [ ("seconds", Json.Float secs); ("entries", Json.Int entries) ]
         ))
       (scopes ()))

let to_json () =
  Json.to_string
    (Json.Obj
       [
         ("enabled", Json.Bool !on);
         ("phases", phases_json ());
         ("counters", counters_json ());
       ])

let table () =
  let phases = scopes () in
  let counter_rows =
    [
      ("flops", string_of_int counters.flops);
      ("nnz_touched", string_of_int counters.nnz_touched);
      ("iters_pruned", string_of_int counters.iters_pruned);
      ("supernodes", string_of_int counters.supernodes);
      ("avg_supernode_width", Printf.sprintf "%.2f" (avg_supernode_width ()));
      ("levels", string_of_int counters.levels);
      ("max_level_width", string_of_int counters.max_level_width);
      ("cache_hits", string_of_int counters.cache_hits);
      ("cache_misses", string_of_int counters.cache_misses);
      ("orderings", string_of_int counters.orderings);
      ("pool_runs", string_of_int counters.pool_runs);
      ("pool_tasks", string_of_int counters.pool_tasks);
      ("pool_max_workers", string_of_int counters.pool_max_workers);
      ("pool_imbalance_pct", string_of_int counters.pool_imbalance_pct);
      ("native_compiles", string_of_int counters.native_compiles);
      ("native_so_hits", string_of_int counters.native_so_hits);
      ("native_fallbacks", string_of_int counters.native_fallbacks);
      ("updown_path_hits", string_of_int counters.updown_path_hits);
      ("updown_path_misses", string_of_int counters.updown_path_misses);
      ("updown_escalations", string_of_int counters.updown_escalations);
    ]
  in
  (* Name-column width follows the longest name present, so long scopes
     like "symbolic.supernode_detection" stay aligned with the rest. *)
  let w =
    List.fold_left (fun acc (name, _, _) -> max acc (String.length name)) 0
      phases
  in
  let w =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) w
      counter_rows
  in
  let w = max w (String.length "counter") in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-*s %11s %11s\n" w "phase" "seconds" "entries");
  List.iter
    (fun (name, secs, entries) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %11.6f %11d\n" w name secs entries))
    phases;
  Buffer.add_string buf (Printf.sprintf "%-*s %11s\n" w "counter" "value");
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%-*s %11s\n" w name v))
    counter_rows;
  Buffer.contents buf
