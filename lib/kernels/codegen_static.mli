open Sympiler_sparse

(** C emission for the §3.3 "other matrix methods" (LDL^T, LU, IC0,
    ILU0): the symbolic index arrays are baked in as static tables, the
    emitted numeric phase contains no symbolic work. Each emitter mirrors
    the corresponding OCaml [factor_ip_body]; the generated function
    returns -1 on success and the failing column/row on a pivot failure. *)

val ldlt : Ldlt.compiled -> string
val lu : Lu.Sympiler.compiled -> Csc.t -> string
(** Needs A's pattern besides the compiled handle (the factorization
    scatters A's columns; the handle stores only the factor patterns). *)

val ic0 : Ic0.compiled -> string
val ilu0 : Ilu0.compiled -> string
