open Sympiler_sparse
open Sympiler_prof

(* The four sparse triangular solve variants of the paper's Figure 1, for
   L x = b with L lower-triangular in CSC form. All in-place versions take
   [x] already holding b and overwrite it with the solution; the functional
   wrappers copy.

   Counter recording happens after the solve loops (closed-form counts) or
   in a dedicated counted loop, always behind [Prof.enabled], so the hot
   paths are untouched when profiling is off. *)

(* Figure 1b: naive forward substitution — visits every column. *)
let naive_ip (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for j = 0 to n - 1 do
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done;
  if Prof.enabled () then begin
    let c = Prof.cell () in
    let nnz = lp.(n) in
    c.Prof.flops <- c.Prof.flops + ((2 * nnz) - n);
    c.Prof.nnz_touched <- c.Prof.nnz_touched + nnz
  end

(* Figure 1c: library implementation (Eigen's sparse triangular solve) —
   skips columns whose solution entry is zero, but still scans all n
   columns and tests each. The exact work depends on runtime values, so the
   profiled variant is a separate counted loop. *)
let library_ip_counted (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  let flops = ref 0 and nnz = ref 0 in
  for j = 0 to n - 1 do
    if x.(j) <> 0.0 then begin
      let xj = x.(j) /. lx.(lp.(j)) in
      x.(j) <- xj;
      for p = lp.(j) + 1 to lp.(j + 1) - 1 do
        x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
      done;
      let cn = lp.(j + 1) - lp.(j) in
      flops := !flops + (2 * cn) - 1;
      nnz := !nnz + cn
    end
  done;
  let c = Prof.cell () in
  c.Prof.flops <- c.Prof.flops + !flops;
  c.Prof.nnz_touched <- c.Prof.nnz_touched + !nnz

let library_ip (l : Csc.t) (x : float array) =
  if Prof.enabled () then library_ip_counted l x
  else begin
    let n = l.Csc.ncols in
    let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
    for j = 0 to n - 1 do
      if x.(j) <> 0.0 then begin
        let xj = x.(j) /. lx.(lp.(j)) in
        x.(j) <- xj;
        for p = lp.(j) + 1 to lp.(j + 1) - 1 do
          x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
        done
      end
    done
  end

(* Figure 1d: decoupled code — iterates only over the precomputed reach-set
   (in topological order), with no zero tests: O(|b| + f). *)
let decoupled_ip (l : Csc.t) (reach : int array) (x : float array) =
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for px = 0 to Array.length reach - 1 do
    let j = reach.(px) in
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done;
  if Prof.enabled () then begin
    let c = Prof.cell () in
    let nnz = ref 0 in
    Array.iter (fun j -> nnz := !nnz + (lp.(j + 1) - lp.(j))) reach;
    c.Prof.flops <- c.Prof.flops + ((2 * !nnz) - Array.length reach);
    c.Prof.nnz_touched <- c.Prof.nnz_touched + !nnz
  end

(* Solve L^T x = b using the CSC storage of L (columns of L are rows of
   L^T): backward substitution. Used to complete A = L L^T solves. *)
let transpose_ip (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for j = n - 1 downto 0 do
    let s = ref x.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      s := !s -. (lx.(p) *. x.(li.(p)))
    done;
    x.(j) <- !s /. lx.(lp.(j))
  done

let run ip l b =
  let x = Array.copy b in
  ip l x;
  x

let naive l b = run naive_ip l b
let library l b = run library_ip l b

let decoupled l (b : Vector.sparse) =
  let reach = Sympiler_symbolic.Dep_graph.reach l b.Vector.indices in
  let x = Vector.sparse_to_dense b in
  decoupled_ip l reach x;
  x

let transpose_solve l b = run transpose_ip l b

(* Useful floating point operations of the solve: 2*nnz(col)-1 per column
   that participates (the f of the paper's complexity discussion). The same
   count is used as the numerator for every variant's FLOP/s. *)
let flops (l : Csc.t) (reach : int array) =
  Array.fold_left
    (fun acc j -> acc +. float_of_int ((2 * Csc.col_nnz l j) - 1))
    0.0 reach
