open Sympiler_sparse
open Sympiler_prof

(* Incomplete Cholesky with zero fill, IC(0): the factor keeps exactly the
   pattern of lower(A). One of the §3.3 methods whose symbolic needs (the
   dependence-graph machinery, static patterns) Sympiler's inspectors
   already cover. Used as a preconditioner in the CG example.

   Left-looking column algorithm restricted to A's pattern: identical
   arithmetic to full Cholesky except updates landing outside the pattern
   are dropped. On a matrix whose exact factor has no fill (e.g. a
   tridiagonal matrix) IC(0) equals the exact factor. *)

exception Not_positive_definite of int

(* Positions of L(j, r): for the update pass we need, per column j, the
   list of columns r < j with A(j, r) <> 0 — i.e. the row pattern of
   lower(A) — together with the position of that entry. Precomputed from
   the transpose, making the numeric phase decoupled (Sympiler-style). *)
type compiled = {
  n : int;
  colptr : int array;
  rowind : int array;
  (* Flattened row lists: for row j, [row_ptr.(j), row_ptr.(j+1)) indexes
     (row_col, row_pos): the columns r < j with A(j,r) <> 0 and the storage
     position of that entry. *)
  row_ptr : int array;
  row_col : int array;
  row_pos : int array;
}

let compile (a_lower : Csc.t) : compiled =
  let n = a_lower.Csc.ncols in
  let row_ptr = Array.make (n + 1) 0 in
  Csc.iter a_lower (fun i j _ -> if i > j then row_ptr.(i) <- row_ptr.(i) + 1);
  let _ = Utils.cumsum row_ptr in
  let nrow = row_ptr.(n) in
  let row_col = Array.make (max 1 nrow) 0 in
  let row_pos = Array.make (max 1 nrow) 0 in
  let next = Array.make n 0 in
  Array.blit row_ptr 0 next 0 n;
  for j = 0 to n - 1 do
    for p = a_lower.Csc.colptr.(j) to a_lower.Csc.colptr.(j + 1) - 1 do
      let i = a_lower.Csc.rowind.(p) in
      if i > j then begin
        row_col.(next.(i)) <- j;
        row_pos.(next.(i)) <- p;
        next.(i) <- next.(i) + 1
      end
    done
  done;
  {
    n;
    colptr = a_lower.Csc.colptr;
    rowind = a_lower.Csc.rowind;
    row_ptr;
    row_col;
    row_pos;
  }

(* A plan owns the factor values, the dense position map, and a CSC view
   [l] over those values; repeated [factor_ip] calls allocate nothing. *)
type plan = {
  c : compiled;
  lx : float array; (* values of L, plan-owned *)
  pos : int array; (* dense row -> position map (-1 between columns) *)
  l : Csc.t; (* factor view over [lx] *)
}

let make_plan (c : compiled) : plan =
  let n = c.n in
  let lx = Array.make c.colptr.(n) 0.0 in
  let l =
    Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy c.colptr)
      ~rowind:(Array.copy c.rowind) ~values:lx
  in
  { c; lx; pos = Array.make n (-1); l }

(* Numeric IC(0) factorization; values of [a_lower] may change between
   calls as long as the pattern matches the compiled one. *)
let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
  let c = p.c in
  let n = c.n in
  let lp = c.colptr and li = c.rowind in
  let lx = p.lx in
  Array.blit a_lower.Csc.values 0 lx 0 lp.(n);
  (* Dense map row -> position in the current column, for pattern-limited
     scattering. A run aborted by [Not_positive_definite] leaves stale
     entries behind; the fill makes the plan reusable after any outcome. *)
  let pos = p.pos in
  Array.fill pos 0 n (-1);
  for j = 0 to n - 1 do
    (* Update column j by every column r with L(j, r) <> 0. *)
    for p = lp.(j) to lp.(j + 1) - 1 do
      pos.(li.(p)) <- p
    done;
    for q = c.row_ptr.(j) to c.row_ptr.(j + 1) - 1 do
      let r = c.row_col.(q) in
      let ljr = lx.(c.row_pos.(q)) in
      if ljr <> 0.0 then
        (* Subtract ljr * L(j:n, r), keeping only entries inside column
           j's pattern (the IC(0) dropping rule). *)
        let start = c.row_pos.(q) in
        for t = start to lp.(r + 1) - 1 do
          let i = li.(t) in
          if pos.(i) >= 0 then lx.(pos.(i)) <- lx.(pos.(i)) -. (lx.(t) *. ljr)
        done
    done;
    let d = lx.(lp.(j)) in
    if d <= 0.0 then raise (Not_positive_definite j);
    let djj = sqrt d in
    lx.(lp.(j)) <- djj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      lx.(p) <- lx.(p) /. djj
    done;
    for p = lp.(j) to lp.(j + 1) - 1 do
      pos.(li.(p)) <- -1
    done
  done;
  if Prof.enabled () then begin
    (* Structure-driven operation count: updates attempted per prune-set
       column plus the sqrt/divide pass (the IC(0) dropping rule makes the
       exact executed count value-dependent; this is its pattern bound). *)
    let k = Prof.cell () in
    let fl = ref 0 in
    for j = 0 to n - 1 do
      for q = c.row_ptr.(j) to c.row_ptr.(j + 1) - 1 do
        fl := !fl + (2 * (lp.(c.row_col.(q) + 1) - c.row_pos.(q)))
      done;
      fl := !fl + (lp.(j + 1) - lp.(j))
    done;
    k.Prof.flops <- k.Prof.flops + !fl;
    k.Prof.nnz_touched <- k.Prof.nnz_touched + lp.(n)
  end

(* Spanned entry point: single-bool no-op when tracing is off; the [try]
   keeps the span stack balanced across [Not_positive_definite]. *)
let factor_ip (p : plan) (a_lower : Csc.t) : unit =
  Sympiler_trace.Trace.begin_span "factor_ip.ic0";
  (try factor_ip_body p a_lower
   with e ->
     Sympiler_trace.Trace.end_span ();
     raise e);
  Sympiler_trace.Trace.end_span ()

(* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
let factor (c : compiled) (a_lower : Csc.t) : Csc.t =
  let p = make_plan c in
  factor_ip p a_lower;
  p.l

(* Convenience: compile + factor in one call. *)
let factorize (a_lower : Csc.t) : Csc.t = factor (compile a_lower) a_lower
