open Sympiler_sparse

(** Incomplete LU with zero fill, ILU(0), in the classic row-wise (IKJ)
    formulation: the combined L\U factor keeps exactly A's pattern. §5 of
    the paper singles ILU(0) out as the static-pattern kernel earlier
    inspector-executor work targets; here the CSR view and the diagonal
    positions are compile-time position maps. *)

exception Zero_pivot of int

type compiled = {
  n : int;
  rowptr : int array;  (** CSR row pointers of A's pattern *)
  colind : int array;  (** column indices, ascending within each row *)
  diag : int array;  (** position of each diagonal entry *)
  csc_map : int array;  (** value gather map from the CSC input *)
}

type factors = {
  c : compiled;
  values : float array;
      (** CSR values of L\U: entries left of the diagonal are L (unit
          diagonal implicit), the rest is U *)
}

val compile : Csc.t -> compiled
(** Builds the CSR view; raises {!Zero_pivot} when a structural diagonal
    entry is missing. *)

val factor : compiled -> Csc.t -> factors
(** Allocates fresh factors per call; use a {!plan} for allocation-free
    steady state. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  pos : int array;  (** dense column→row-entry scratch *)
  f : factors;  (** factor view over the plan's values *)
}

val make_plan : compiled -> plan

val factor_ip : plan -> Csc.t -> unit
(** Numeric ILU(0) into the plan's storage ([plan.f] afterwards); zero
    allocation in steady state, reusable even after {!Zero_pivot}. *)

val factorize : Csc.t -> factors

val solve : factors -> float array -> float array
(** Apply the preconditioner: solve [(L U) x = b]. *)
