open Sympiler_sparse

(** Sparse rank-1 update/downdate of a Cholesky factorization: rewrite L in
    place so that [L L^T] becomes [A + sigma w w^T], touching only the
    columns on the elimination-tree path from w's minimum index to the root
    — the rank-update method of §3.3 (Davis & Hager / CSparse
    [cs_updown]). The required symbolic analysis is a single-node etree
    up-traversal, one of Sympiler's inspection strategies (Table 1).

    Precondition (as in CSparse): the pattern of [w] must be a subset of
    the pattern of L's column [jmin] (its minimum index); then L's pattern
    is unchanged and the numeric phase is fully decoupled. The precondition
    is tight — a violation always means the updated factor needs entries L
    does not have (fill-clique lemma), so the caller must recompile with
    the augmented pattern (the facade's escalation path does).

    Plans own every workspace and memoize the per-[jmin] etree path, so
    steady-state [update_ip] calls allocate nothing; a failed downdate
    rolls the touched values back before re-raising. All entry points
    validate [w] (sorted, unique, in-range indices) and raise
    [Invalid_argument] on malformed input instead of corrupting L. *)

exception Not_positive_definite of int
(** A downdate destroyed positive definiteness. Plan entry points (and the
    one-shot {!apply}) roll the factor back before re-raising. *)

exception Pattern_violation of int
(** [w] has a nonzero outside the allowed pattern (offending row given). *)

(** {1 One-shot spellings (allocating)} *)

type compiled = { path : int array }
(** The etree path the update walks (symbolic inspection set). *)

val compile : parent:int array -> Vector.sparse -> compiled
(** Symbolic phase: walk the etree from w's minimum index to the root.
    Validates [w]; raises [Invalid_argument] on unsorted, duplicate, or
    out-of-range indices. *)

val check_pattern : Csc.t -> Vector.sparse -> unit
(** Validate [w] and the precondition; raises {!Pattern_violation}. *)

val apply : ?sigma:float -> compiled -> Csc.t -> Vector.sparse -> unit
(** Numeric phase, in place on [l]'s values: [A + sigma w w^T] (default
    [sigma = 1.]; any magnitude works — it folds into the vector). A
    downdate that raises {!Not_positive_definite} leaves [l] unchanged. *)

val update : ?sigma:float -> parent:int array -> Csc.t -> Vector.sparse -> unit
(** [check_pattern] + [compile] + [apply]. *)

val vector_like : Csc.t -> j:int -> scale:float -> Vector.sparse
(** A legal update vector: column [j] of [l] scaled by [scale]. *)

(** {1 Plans (zero-alloc steady state)} *)

type plan
(** Owns the scatter workspace, the rollback snapshot, the memoized path
    table, and the incremental-refactorization inspection arrays; borrows
    the factor view (values are updated in place). *)

val make_plan : a_pattern:Csc.t -> Csc.t -> plan
(** [make_plan ~a_pattern l]: a plan over the factor view [l] of a matrix
    with input pattern [a_pattern] (both in compiled order). Derives the
    etree from [l]'s pattern; all symbolic work beyond per-[jmin] paths
    happens here. *)

val update_ip : plan -> ?sigma:float -> Vector.sparse -> unit
(** In-place [A + sigma w w^T] (default [sigma = 1.]). Steady-state calls
    (memoized path, no failure) allocate nothing. Raises
    [Invalid_argument] on malformed [w], {!Pattern_violation} when the
    precondition fails (factor untouched), {!Not_positive_definite} on a
    rejected downdate (factor rolled back). *)

val downdate_ip : plan -> ?sigma:float -> Vector.sparse -> unit
(** [update_ip ~sigma:(-. sigma)]: in-place [A - sigma w w^T]. *)

val update_vec : plan -> neg:bool -> sigma:float -> Vector.sparse -> unit
(** Validated vector spelling with the downdate direction as an explicit
    flag ([neg] logically negates [sigma]) — labelled args only, so hot
    callers never build an option or box a negated float. *)

val update_raw :
  plan -> neg:bool -> sigma:float -> int array -> float array -> int -> unit
(** [update_raw pl ~neg ~sigma wi wv len]: the no-vector spelling over raw
    index/value arrays (first [len] entries, already validated and
    sorted) — the facade's ordered-gather path. *)

val note_refactor : plan -> float array -> unit
(** Record the input values (compiled order) the factor was just computed
    from, as the diff baseline of {!refactor_cols_ip}. *)

val prev_valid : plan -> bool
(** Whether a baseline is recorded and still matches the factor (rank
    updates invalidate it). *)

val refactor_cols_ip : plan -> float array -> int
(** Incremental refactorization: diff the new input values against the
    recorded baseline, close changed columns over their etree paths, and
    recompute only the affected rows (position-driven up-looking kernel —
    bitwise what a from-scratch simplicial factorization produces).
    Returns the number of rows recomputed and re-records the baseline.
    Raises [Invalid_argument] without a valid baseline, and
    {!Not_positive_definite} if the new values are not PD (the plan then
    requires a full refactor). *)

val current_matrix : plan -> Csc.t
(** lower(L L^T) over L's own pattern — the matrix the factor currently
    represents (after any updates). The escalation path's starting point:
    the true matrix's pattern is a subset of pattern(L) by the fill-clique
    lemma, so nothing is lost. Allocates the result. *)

(** {1 LDL^T plans} *)

type ldlt_plan
(** Rank-1 update state over a unit-lower [L] and diagonal [D] — the
    Gill–Golub–Murray–Saunders C1 recurrence (no square roots, update and
    downdate share one code path, indefinite pivots allowed). *)

val make_ldlt_plan : Csc.t -> float array -> ldlt_plan
(** [make_ldlt_plan l d]: borrow the factor views of an LDL^T plan. *)

val ldlt_update_ip : ldlt_plan -> ?sigma:float -> Vector.sparse -> unit
(** In-place [A + sigma w w^T] on the LDL^T factors. Raises
    [Ldlt.Zero_pivot] on an exactly-zero updated pivot (factors rolled
    back), {!Pattern_violation} / [Invalid_argument] as for Cholesky. *)

val ldlt_downdate_ip : ldlt_plan -> ?sigma:float -> Vector.sparse -> unit
(** [ldlt_update_ip ~sigma:(-. sigma)]. *)

val ldlt_update_vec :
  ldlt_plan -> neg:bool -> sigma:float -> Vector.sparse -> unit
(** Flag-direction vector spelling, as {!update_vec}. *)

val ldlt_update_raw :
  ldlt_plan -> neg:bool -> sigma:float -> int array -> float array -> int -> unit
(** Raw-array spelling, as {!update_raw}. *)
