open Sympiler_sparse
open Sympiler_symbolic

(* Sparse rank-1 update/downdate of a Cholesky factorization:
   given L with A = L L^T, compute the factor of A + sigma w w^T in place,
   touching only the columns on the elimination-tree path from w's minimum
   index to the root — the rank-update method of §3.3 (Davis & Hager;
   CSparse's cs_updown), whose required symbolic analysis is a single-node
   etree up-traversal, i.e. exactly one of Sympiler's inspection
   strategies.

   Requirement (as in CSparse): the pattern of w must be a subset of the
   pattern of L's column jmin, where jmin is w's minimum index — then the
   factor's pattern does not change and the numeric phase is decoupled.
   This is not merely CSparse's convention: an update is representable in
   L's existing pattern IF AND ONLY IF the precondition holds (by the
   fill-clique lemma, two rows in one column of L imply the corresponding
   L entry exists), so a violation always means structural growth and the
   caller must recompile — see the facade's escalation path.

   Plans ([make_plan]/[update_ip]) own every workspace, so steady-state
   updates allocate nothing; the per-jmin etree path is memoized in an
   {!Etree.path_table}, so a repeated update's symbolic phase is a table
   read. A failed downdate rolls the path's values back before re-raising,
   so the plan stays reusable like the other families' pivot-failure
   paths. *)

module Prof = Sympiler_prof.Prof

exception Not_positive_definite of int
exception Pattern_violation of int

(* ------------------------------ validation ------------------------------ *)

(* A malformed w (unsorted, duplicated, or out-of-range indices) used to
   corrupt L silently: the minimum index was read off [indices.(0)] and the
   scatter overwrote duplicates. Validate up front — O(|w|). *)
let validate ~who ~n (wi : int array) (len : int) : unit =
  for k = 0 to len - 1 do
    let i = wi.(k) in
    if i < 0 || i >= n then
      invalid_arg (who ^ ": w index out of range");
    if k > 0 && wi.(k - 1) >= i then
      invalid_arg (who ^ ": w indices must be sorted and unique")
  done

(* Precondition check against column jmin of L. Both index sets are
   sorted, so a single merge scan does it in O(|L(:,jmin)|). *)
let check_subset (l : Csc.t) (wi : int array) (len : int) (jmin : int) : unit =
  let li = l.Csc.rowind in
  let hi = l.Csc.colptr.(jmin + 1) in
  let lo = ref l.Csc.colptr.(jmin) in
  for k = 0 to len - 1 do
    let i = wi.(k) in
    while !lo < hi && li.(!lo) < i do
      incr lo
    done;
    if !lo >= hi || li.(!lo) <> i then raise (Pattern_violation i)
  done

(* --------------------------- numeric core ------------------------------- *)

(* In-place Davis–Hager update along [path]. [wx] holds the scattered
   update vector scaled by sqrt|sigma| (the rank-1 magnitude folds into
   the vector); [pos] selects update (true) vs downdate. A bool rather
   than a sign float so hot callers never box a freshly computed float to
   cross the call boundary (the zero-alloc contract). Raises
   [Not_positive_definite] when a downdate destroys positive definiteness;
   the caller owns rollback and scatter cleanup. *)
let apply_along_path (l : Csc.t) (wx : float array) (path : int array)
    (pos : bool) : unit =
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  let sgn = if pos then 1.0 else -1.0 in
  let beta = ref 1.0 in
  for t = 0 to Array.length path - 1 do
    let j = path.(t) in
    let p0 = lp.(j) in
    let alpha = wx.(j) /. lx.(p0) in
    let beta2_sq = (!beta *. !beta) +. (sgn *. alpha *. alpha) in
    if beta2_sq <= 0.0 then raise (Not_positive_definite j);
    let beta2 = sqrt beta2_sq in
    let delta = if sgn > 0.0 then !beta /. beta2 else beta2 /. !beta in
    let gamma = sgn *. alpha /. (beta2 *. !beta) in
    lx.(p0) <-
      (delta *. lx.(p0)) +. (if sgn > 0.0 then gamma *. wx.(j) else 0.0);
    beta := beta2;
    for p = p0 + 1 to lp.(j + 1) - 1 do
      let i = li.(p) in
      let w1 = wx.(i) in
      let w2 = w1 -. (alpha *. lx.(p)) in
      wx.(i) <- w2;
      lx.(p) <- (delta *. lx.(p)) +. (gamma *. (if sgn > 0.0 then w1 else w2))
    done
  done

(* --------------------------- legacy one-shots --------------------------- *)

type compiled = {
  path : int array; (* etree path from jmin to the root *)
}

(* Symbolic phase: the update path. *)
let compile ~(parent : int array) (w : Vector.sparse) : compiled =
  let len = Array.length w.Vector.indices in
  if len = 0 then { path = [||] }
  else begin
    validate ~who:"Rank_update.compile" ~n:(Array.length parent)
      w.Vector.indices len;
    { path = Etree.path_to_root parent w.Vector.indices.(0) }
  end

(* Check the CSparse precondition; raises [Pattern_violation] otherwise. *)
let check_pattern (l : Csc.t) (w : Vector.sparse) : unit =
  let len = Array.length w.Vector.indices in
  if len > 0 then begin
    validate ~who:"Rank_update.check_pattern" ~n:l.Csc.ncols w.Vector.indices
      len;
    check_subset l w.Vector.indices len w.Vector.indices.(0)
  end

(* Numeric phase: in-place update of [l]'s values along the path.
   One-shot spelling — it allocates its scatter (and, for a downdate, a
   rollback snapshot of the path columns); plans make both plan-owned. *)
let apply ?(sigma = 1.0) (c : compiled) (l : Csc.t) (w : Vector.sparse) : unit
    =
  if Array.length c.path > 0 && sigma <> 0.0 then begin
    let len = Array.length w.Vector.indices in
    validate ~who:"Rank_update.apply" ~n:l.Csc.ncols w.Vector.indices len;
    let wx = Array.make l.Csc.ncols 0.0 in
    let s = sqrt (Float.abs sigma) in
    for k = 0 to len - 1 do
      wx.(w.Vector.indices.(k)) <- s *. w.Vector.values.(k)
    done;
    let pos = sigma > 0.0 in
    if not pos then begin
      (* Snapshot the path columns so a rejected downdate is
         non-destructive even through this one-shot entry point. *)
      let lp = l.Csc.colptr and lx = l.Csc.values in
      let total = ref 0 in
      Array.iter (fun j -> total := !total + lp.(j + 1) - lp.(j)) c.path;
      let snap = Array.make (max 1 !total) 0.0 in
      let off = ref 0 in
      Array.iter
        (fun j ->
          let w = lp.(j + 1) - lp.(j) in
          Array.blit lx lp.(j) snap !off w;
          off := !off + w)
        c.path;
      try apply_along_path l wx c.path pos
      with Not_positive_definite _ as e ->
        let off = ref 0 in
        Array.iter
          (fun j ->
            let w = lp.(j + 1) - lp.(j) in
            Array.blit snap !off lx lp.(j) w;
            off := !off + w)
          c.path;
        raise e
    end
    else apply_along_path l wx c.path pos
  end

(* Convenience: symbolic + numeric in one call, with the pattern check. *)
let update ?(sigma = 1.0) ~(parent : int array) (l : Csc.t)
    (w : Vector.sparse) : unit =
  check_pattern l w;
  apply ~sigma (compile ~parent w) l w

(* A sparse vector with the pattern of column [j] of [l] (below and
   including the diagonal), scaled by [scale] — always a legal update
   vector for [l]. Handy for tests and for the rank-update use cases the
   paper cites (column additions/removals in optimization solvers). *)
let vector_like (l : Csc.t) ~(j : int) ~(scale : float) : Vector.sparse =
  let lo = l.Csc.colptr.(j) and hi = l.Csc.colptr.(j + 1) in
  {
    Vector.n = l.Csc.ncols;
    indices = Array.sub l.Csc.rowind lo (hi - lo);
    values = Array.init (hi - lo) (fun t -> scale *. l.Csc.values.(lo + t));
  }

(* ------------------------------- plans ---------------------------------- *)

(* The etree of the factor, read straight off its (sorted, diagonal-first)
   pattern: parent j = first off-diagonal row index of column j. *)
let parent_of_factor (l : Csc.t) : int array =
  let n = l.Csc.ncols in
  let parent = Array.make n (-1) in
  for j = 0 to n - 1 do
    if l.Csc.colptr.(j + 1) - l.Csc.colptr.(j) > 1 then
      parent.(j) <- l.Csc.rowind.(l.Csc.colptr.(j) + 1)
  done;
  parent

type plan = {
  l : Csc.t; (* borrowed factor view; values mutated in place *)
  n : int;
  parent : int array; (* etree, derived from the factor pattern *)
  tbl : Etree.path_table; (* memoized jmin -> path *)
  wx : float array; (* scatter workspace, all-zero between calls *)
  snap : float array; (* downdate rollback buffer (nnz L worst case) *)
  (* incremental refactorization: position-driven up-looking re-run *)
  a_colptr : int array; (* input pattern (compiled order), aliased *)
  up_colptr : int array; (* transpose of the input pattern + gather map *)
  up_rowind : int array;
  up_map : int array;
  rt_ptr : int array; (* transpose of L's pattern: row patterns ... *)
  rt_ind : int array;
  rt_pos : int array; (* ... with write positions into l.values *)
  prev : float array; (* input values at the last recorded refactor *)
  mutable prev_valid : bool;
  mark : int array; (* column-closure stamps *)
  rmark : int array; (* affected-row stamps *)
  mutable stamp : int;
  cols : int array; (* changed-column closure C (path union) *)
  rows : int array; (* affected-row set R (column-pattern union) *)
}

let make_plan ~(a_pattern : Csc.t) (l : Csc.t) : plan =
  let n = l.Csc.ncols in
  if a_pattern.Csc.ncols <> n then
    invalid_arg "Rank_update.make_plan: input pattern does not match factor";
  let parent = parent_of_factor l in
  let up_colptr, up_rowind, up_map = Csc.transpose_map a_pattern in
  let rt_ptr, rt_ind, rt_pos = Csc.transpose_map l in
  {
    l;
    n;
    parent;
    tbl = Etree.make_path_table parent;
    wx = Array.make n 0.0;
    snap = Array.make (max 1 (Csc.nnz l)) 0.0;
    a_colptr = a_pattern.Csc.colptr;
    up_colptr;
    up_rowind;
    up_map;
    rt_ptr;
    rt_ind;
    rt_pos;
    prev = Array.make (max 1 (Csc.nnz a_pattern)) 0.0;
    prev_valid = false;
    mark = Array.make n (-1);
    rmark = Array.make n (-1);
    stamp = 0;
    cols = Array.make (max 1 n) 0;
    rows = Array.make (max 1 n) 0;
  }

(* Memoized path lookup, feeding the profiling counters (a hit is the
   steady state: the whole symbolic phase of the update collapsed into one
   array read). *)
let plan_path (tbl : Etree.path_table) (jmin : int) : int array =
  let m0 = tbl.Etree.pt_misses in
  let path = Etree.path tbl jmin in
  if Prof.enabled () then begin
    let k = Prof.cell () in
    if tbl.Etree.pt_misses > m0 then
      k.Prof.updown_path_misses <- k.Prof.updown_path_misses + 1
    else k.Prof.updown_path_hits <- k.Prof.updown_path_hits + 1
  end;
  path

let snapshot_path (pl : plan) (path : int array) : unit =
  let lp = pl.l.Csc.colptr and lx = pl.l.Csc.values in
  let off = ref 0 in
  for t = 0 to Array.length path - 1 do
    let j = path.(t) in
    let w = lp.(j + 1) - lp.(j) in
    Array.blit lx lp.(j) pl.snap !off w;
    off := !off + w
  done

let restore_path (pl : plan) (path : int array) : unit =
  let lp = pl.l.Csc.colptr and lx = pl.l.Csc.values in
  let off = ref 0 in
  for t = 0 to Array.length path - 1 do
    let j = path.(t) in
    let w = lp.(j + 1) - lp.(j) in
    Array.blit pl.snap !off lx lp.(j) w;
    off := !off + w
  done

(* Every index the numeric loop touches in [wx] lies on the path (any row
   of a path column is an etree ancestor, hence itself on the path), so
   zeroing along the path restores the all-zero invariant. *)
let clear_path (wx : float array) (path : int array) : unit =
  for t = 0 to Array.length path - 1 do
    wx.(path.(t)) <- 0.0
  done

(* Core entry point over raw (validated, sorted) index/value arrays — the
   facade's ordered-gather path lands here without building a vector.
   [neg] logically negates [sigma] (a downdate request): the magnitude
   only feeds sqrt|sigma| and the direction is a bool, so the sign flip
   never materializes a fresh boxed float on the zero-alloc path. *)
let update_raw (pl : plan) ~(neg : bool) ~(sigma : float) (wi : int array)
    (wv : float array) (len : int) : unit =
  let jmin = wi.(0) in
  check_subset pl.l wi len jmin;
  let path = plan_path pl.tbl jmin in
  let s = sqrt (Float.abs sigma) in
  for k = 0 to len - 1 do
    pl.wx.(wi.(k)) <- s *. wv.(k)
  done;
  let pos = sigma > 0.0 <> neg in
  if not pos then snapshot_path pl path;
  (try apply_along_path pl.l pl.wx path pos
   with Not_positive_definite _ as e ->
     if not pos then restore_path pl path;
     clear_path pl.wx path;
     raise e);
  clear_path pl.wx path;
  (* The factor no longer matches the last recorded input values. *)
  pl.prev_valid <- false

(* Validated vector spelling with the explicit direction flag — the
   facade's natural-order path (labelled args only: no option box). *)
let update_vec (pl : plan) ~(neg : bool) ~(sigma : float) (w : Vector.sparse) :
    unit =
  let len = Array.length w.Vector.indices in
  if len > 0 && sigma <> 0.0 then begin
    if w.Vector.n <> pl.n then
      invalid_arg "Rank_update.update_ip: dimension mismatch";
    validate ~who:"Rank_update.update_ip" ~n:pl.n w.Vector.indices len;
    update_raw pl ~neg ~sigma w.Vector.indices w.Vector.values len
  end

let update_ip (pl : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
  update_vec pl ~neg:false ~sigma w

let downdate_ip (pl : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
  update_vec pl ~neg:true ~sigma w

(* --------------------- incremental refactorization ---------------------- *)

(* Record the input values (compiled order) the factor was computed from;
   [refactor_cols_ip] diffs against them. *)
let note_refactor (pl : plan) (av : float array) : unit =
  let nnz = pl.a_colptr.(pl.n) in
  if Array.length av <> nnz then
    invalid_arg "Rank_update.note_refactor: input nnz mismatch";
  Array.blit av 0 pl.prev 0 nnz;
  pl.prev_valid <- true

let prev_valid (pl : plan) : bool = pl.prev_valid

(* In-place heapsort of [a.(0..len)], ascending. Zero allocation. *)
let heapsort (a : int array) (len : int) : unit =
  let sift root last =
    let r = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !r) + 1 in
      if child > last then continue := false
      else begin
        let child =
          if child + 1 <= last && a.(child + 1) > a.(child) then child + 1
          else child
        in
        if a.(!r) >= a.(child) then continue := false
        else begin
          let t = a.(!r) in
          a.(!r) <- a.(child);
          a.(child) <- t;
          r := child
        end
      end
    done
  in
  for root = (len - 2) / 2 downto 0 do
    sift root (len - 1)
  done;
  for last = len - 1 downto 1 do
    let t = a.(0) in
    a.(0) <- a.(last);
    a.(last) <- t;
    sift 0 (last - 1)
  done

(* Recompute row [k] of L with the up-looking kernel, writes driven by the
   precomputed transpose positions instead of fill cursors — this is what
   makes recomputing an arbitrary subset of rows possible. Arithmetic is
   identical (same operands, same order) to a full up-looking
   factorization, so recomputed rows are bitwise what a from-scratch
   simplicial refactor would produce. *)
let recompute_row (pl : plan) (av : float array) (k : int) : unit =
  let lp = pl.l.Csc.colptr
  and li = pl.l.Csc.rowind
  and lx = pl.l.Csc.values in
  let x = pl.wx in
  let d = ref 0.0 in
  for p = pl.up_colptr.(k) to pl.up_colptr.(k + 1) - 1 do
    let i = pl.up_rowind.(p) in
    if i = k then d := av.(pl.up_map.(p))
    else if i < k then x.(i) <- av.(pl.up_map.(p))
  done;
  for q = pl.rt_ptr.(k) to pl.rt_ptr.(k + 1) - 1 do
    let j = pl.rt_ind.(q) in
    if j < k then begin
      let lkj = x.(j) /. lx.(lp.(j)) in
      x.(j) <- 0.0;
      let hi = lp.(j + 1) in
      let p = ref (lp.(j) + 1) in
      while !p < hi && li.(!p) < k do
        x.(li.(!p)) <- x.(li.(!p)) -. (lx.(!p) *. lkj);
        incr p
      done;
      d := !d -. (lkj *. lkj);
      lx.(pl.rt_pos.(q)) <- lkj
    end
  done;
  if !d <= 0.0 then raise (Not_positive_definite k);
  lx.(lp.(k)) <- sqrt !d

(* Incremental refactorization: diff the new input values against the
   recorded baseline, close the changed columns over their etree paths
   (the §3.3 single-path inspector, batched), take the union of those
   columns' L patterns as the affected rows, and recompute exactly those
   rows in ascending order. Returns the number of rows recomputed.
   Requires a recorded baseline ([note_refactor]); rank updates invalidate
   it (the factor then belongs to a different matrix), and the facade
   falls back to a full refactor in that case. *)
let refactor_cols_ip (pl : plan) (av : float array) : int =
  if not pl.prev_valid then
    invalid_arg
      "Rank_update.refactor_cols_ip: no recorded baseline (full refactor \
       required first)";
  let nnz = pl.a_colptr.(pl.n) in
  if Array.length av <> nnz then
    invalid_arg "Rank_update.refactor_cols_ip: input nnz mismatch";
  pl.stamp <- pl.stamp + 1;
  let stamp = pl.stamp in
  (* Changed columns, closed over their paths to the root. The mark array
     short-circuits shared path suffixes, so the closure is O(|C|). *)
  let ncols = ref 0 in
  for c = 0 to pl.n - 1 do
    let changed = ref false in
    for p = pl.a_colptr.(c) to pl.a_colptr.(c + 1) - 1 do
      if av.(p) <> pl.prev.(p) then changed := true
    done;
    if !changed then begin
      let j = ref c in
      while !j >= 0 && pl.mark.(!j) <> stamp do
        pl.mark.(!j) <- stamp;
        pl.cols.(!ncols) <- !j;
        incr ncols;
        j := pl.parent.(!j)
      done
    end
  done;
  (* Affected rows: every row with an entry in a changed column. Rows that
     only read changed values are themselves in this union (a row of a
     column is an entry of that column), so the set is closed. *)
  let lp = pl.l.Csc.colptr and li = pl.l.Csc.rowind in
  let nrows = ref 0 in
  for t = 0 to !ncols - 1 do
    let c = pl.cols.(t) in
    for p = lp.(c) to lp.(c + 1) - 1 do
      let i = li.(p) in
      if pl.rmark.(i) <> stamp then begin
        pl.rmark.(i) <- stamp;
        pl.rows.(!nrows) <- i;
        incr nrows
      end
    done
  done;
  heapsort pl.rows !nrows;
  (try
     for t = 0 to !nrows - 1 do
       recompute_row pl av pl.rows.(t)
     done
   with e ->
     (* A failed recompute leaves partial rows and a dirty scatter: make
        the workspace clean again and force the facade's full-refactor
        fallback before the plan is trusted again. *)
     Array.fill pl.wx 0 pl.n 0.0;
     pl.prev_valid <- false;
     raise e);
  note_refactor pl av;
  !nrows

(* ----------------------- matrix recovery (escalation) ------------------- *)

(* lower(L L^T) over L's own pattern — the matrix the current factor
   represents, after any sequence of updates. The facade's escalation path
   rebuilds its input from this: the true matrix's pattern is a subset of
   pattern(L) (fill-clique lemma), so restricting to L's pattern loses
   nothing. For each output column j we scatter row j of L (the rt arrays
   give row patterns plus value positions) and dot it against the k <= j
   prefix of each row i in column j's pattern:
     M(i,j) = sum_{k <= j} L(i,k) L(j,k).
   Allocates the result (escalation is the rare path). *)
let current_matrix (pl : plan) : Csc.t =
  let l = pl.l in
  let lx = l.Csc.values in
  let wx = pl.wx in
  let nnz = Csc.nnz l in
  let values = Array.make nnz 0.0 in
  for j = 0 to pl.n - 1 do
    (* Scatter row j of L: wx.(k) = L(j,k) for k <= j. *)
    for q = pl.rt_ptr.(j) to pl.rt_ptr.(j + 1) - 1 do
      wx.(pl.rt_ind.(q)) <- lx.(pl.rt_pos.(q))
    done;
    for p = l.Csc.colptr.(j) to l.Csc.colptr.(j + 1) - 1 do
      let i = l.Csc.rowind.(p) in
      (* Dot row i's k <= j prefix against the scattered row j. Row
         entries come out of [transpose_map] column-sorted, so the prefix
         is a contiguous scan. *)
      let acc = ref 0.0 in
      let q = ref pl.rt_ptr.(i) in
      let hi = pl.rt_ptr.(i + 1) in
      while !q < hi && pl.rt_ind.(!q) <= j do
        acc := !acc +. (lx.(pl.rt_pos.(!q)) *. wx.(pl.rt_ind.(!q)));
        incr q
      done;
      values.(p) <- !acc
    done;
    for q = pl.rt_ptr.(j) to pl.rt_ptr.(j + 1) - 1 do
      wx.(pl.rt_ind.(q)) <- 0.0
    done
  done;
  Csc.create ~nrows:l.Csc.nrows ~ncols:pl.n
    ~colptr:(Array.copy l.Csc.colptr)
    ~rowind:(Array.copy l.Csc.rowind)
    ~values

(* ------------------------------ LDL^T ----------------------------------- *)

(* Rank-1 update of an LDL^T factorization (unit-diagonal L, diagonal D):
   the Gill–Golub–Murray–Saunders C1 recurrence. Unlike the Cholesky form
   it needs no square roots and carries sigma through the alpha recurrence
   directly, so update and downdate are one code path — and since LDL^T
   admits indefinite matrices, the only failure is an exactly-zero pivot
   ([Ldlt.Zero_pivot], matching the factor kernel). Both update and
   downdate snapshot the path for rollback: with an indefinite base either
   direction can hit a zero pivot. *)

type ldlt_plan = {
  lu : Csc.t; (* borrowed unit-lower factor view *)
  ld : float array; (* borrowed diagonal of D *)
  ln : int;
  lparent : int array;
  ltbl : Etree.path_table;
  lwx : float array; (* scatter workspace, all-zero between calls *)
  lsnap : float array; (* L-values rollback buffer *)
  ldsnap : float array; (* D rollback buffer (per path node) *)
}

let make_ldlt_plan (l : Csc.t) (d : float array) : ldlt_plan =
  let n = l.Csc.ncols in
  if Array.length d <> n then
    invalid_arg "Rank_update.make_ldlt_plan: diagonal length mismatch";
  let parent = parent_of_factor l in
  {
    lu = l;
    ld = d;
    ln = n;
    lparent = parent;
    ltbl = Etree.make_path_table parent;
    lwx = Array.make n 0.0;
    lsnap = Array.make (max 1 (Csc.nnz l)) 0.0;
    ldsnap = Array.make (max 1 n) 0.0;
  }

let ldlt_update_raw (pl : ldlt_plan) ~(neg : bool) ~(sigma : float)
    (wi : int array) (wv : float array) (len : int) : unit =
  let jmin = wi.(0) in
  check_subset pl.lu wi len jmin;
  let path = plan_path pl.ltbl jmin in
  for k = 0 to len - 1 do
    pl.lwx.(wi.(k)) <- wv.(k)
  done;
  let lp = pl.lu.Csc.colptr
  and li = pl.lu.Csc.rowind
  and lx = pl.lu.Csc.values in
  let d = pl.ld in
  (* Snapshot values and pivots along the path. *)
  let off = ref 0 in
  for t = 0 to Array.length path - 1 do
    let j = path.(t) in
    let w = lp.(j + 1) - lp.(j) in
    Array.blit lx lp.(j) pl.lsnap !off w;
    off := !off + w;
    pl.ldsnap.(t) <- d.(j)
  done;
  let a = ref (if neg then -.sigma else sigma) in
  (try
     for t = 0 to Array.length path - 1 do
       let j = path.(t) in
       let pj = pl.lwx.(j) in
       let dj = d.(j) in
       let dj' = dj +. (!a *. pj *. pj) in
       if dj' = 0.0 then raise (Ldlt.Zero_pivot j);
       let b = pj *. !a /. dj' in
       a := dj *. !a /. dj';
       d.(j) <- dj';
       for p = lp.(j) + 1 to lp.(j + 1) - 1 do
         let i = li.(p) in
         pl.lwx.(i) <- pl.lwx.(i) -. (pj *. lx.(p));
         lx.(p) <- lx.(p) +. (b *. pl.lwx.(i))
       done
     done
   with e ->
     let off = ref 0 in
     for t = 0 to Array.length path - 1 do
       let j = path.(t) in
       let w = lp.(j + 1) - lp.(j) in
       Array.blit pl.lsnap !off lx lp.(j) w;
       off := !off + w;
       d.(j) <- pl.ldsnap.(t)
     done;
     clear_path pl.lwx path;
     raise e);
  clear_path pl.lwx path

let ldlt_update_vec (pl : ldlt_plan) ~(neg : bool) ~(sigma : float)
    (w : Vector.sparse) : unit =
  let len = Array.length w.Vector.indices in
  if len > 0 && sigma <> 0.0 then begin
    if w.Vector.n <> pl.ln then
      invalid_arg "Rank_update.ldlt_update_ip: dimension mismatch";
    validate ~who:"Rank_update.ldlt_update_ip" ~n:pl.ln w.Vector.indices len;
    ldlt_update_raw pl ~neg ~sigma w.Vector.indices w.Vector.values len
  end

let ldlt_update_ip (pl : ldlt_plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
  ldlt_update_vec pl ~neg:false ~sigma w

let ldlt_downdate_ip (pl : ldlt_plan) ?(sigma = 1.0) (w : Vector.sparse) : unit
    =
  ldlt_update_vec pl ~neg:true ~sigma w
