open Sympiler_sparse
open Sympiler_symbolic

(** Sympiler's triangular-solve executors (the generated code of
    Figure 1e): the reach-set, supernodes, supernode sequence, and the
    block-vs-column strategy decision are all computed once at compile time
    and baked into a {!compiled} value whose numeric routines contain no
    symbolic work.

    The three solve variants mirror the stacked bars of Figure 6:
    VS-Block alone, VS-Block + VI-Prune, and the full pipeline with
    low-level transformations. *)

type compiled = {
  l : Csc.t;
  reach : int array;  (** reach-set, sorted ascending (a dependence order) *)
  sn : Supernodes.t;  (** block-set (VS-Block inspection set) *)
  sn_sequence : int array;  (** supernodes hit by the reach-set, ascending *)
  all_sn : int array;  (** every supernode (for the VS-Block-only variant) *)
  max_below : int;  (** max below-block height, sizes the scratch buffer *)
  tmp : float array;  (** shared block scratch *)
  flops : float;  (** useful numeric flops of the pruned solve *)
  columnwise : bool;
      (** compile-time decision: process the reach-set column by column
          instead of block by block — taken when supernodes are too narrow
          or block processing would waste too much work on unreached
          columns (the paper's VS-Block profitability threshold, §4.2) *)
  decisions : Sympiler_trace.Trace.decision list;
      (** the transformation decision log behind [columnwise]: VS-Block
          (fired/declined with the measured average reached-supernode
          width) and VI-Prune (with the pruned-iteration ratio) *)
}

val compile :
  ?vs_block_threshold:float ->
  ?waste_threshold:float ->
  ?max_width:int ->
  Csc.t ->
  Vector.sparse ->
  compiled
(** Symbolic inspection + planning for [L x = b] with the given RHS
    pattern. Numeric values of L and b are free to change afterwards.
    [vs_block_threshold] (default 1.6): minimum average width of reached
    supernodes for block processing; [waste_threshold] (default 0.1):
    maximum tolerated fraction of extra flops from unreached columns inside
    hit supernodes. *)

val solve_vs_block_ip : compiled -> float array -> unit
(** VS-Block only: every supernode, generic block kernels. *)

val solve_vs_vi_ip : compiled -> float array -> unit
(** VS-Block + VI-Prune: only supernodes hit by the reach-set. *)

val solve_full_ip : compiled -> float array -> unit
(** Full Figure 1e pipeline: + peeled width-1 path, specialized narrow
    kernels, or the flat column loop when compilation chose
    [columnwise]. *)

val solve_vs_block : compiled -> Vector.sparse -> float array
val solve_vs_vi : compiled -> Vector.sparse -> float array
val solve_full : compiled -> Vector.sparse -> float array

(** {2 Plans}

    A plan owns the dense solution buffer, so steady-state solves allocate
    nothing: create once per compiled pattern, then call {!solve_ip} as
    many times as values change. *)

type plan = { c : compiled; x : float array  (** plan-owned solution *) }

val make_plan : compiled -> plan

val solve_ip : plan -> Vector.sparse -> float array
(** Numeric-only solve into the plan's buffer; returns that buffer (valid
    until the next [solve_ip] on the same plan). [b] must have the
    compiled pattern's dimension; zero allocation in steady state. *)
