open Sympiler_sparse
open Sympiler_symbolic

(** Supernodal left-looking Cholesky. One engine serves both the
    CHOLMOD-style library baseline and Sympiler's VS-Block executor; L is
    stored in plain CSC whose per-supernode panels are jagged dense blocks
    (see {!Dense_blas}). *)

type analysis = {
  n : int;
  sn : Supernodes.t;
  l_colptr : int array;
  l_rowind : int array;
  parent : int array;
  nb : int array;  (** below-block height per supernode *)
  flops : float;
  nnz_l : int;
}

(** One descendant update: supernode [d] contributes to the current target
    starting at index [first] of its below-block; the first [t] of its
    remaining [m] rows land in the target's diagonal block. [coff >= 0]
    records compile-time-proven contiguity of the target offsets. *)
type update = { d : int; first : int; t : int; m : int; coff : int }

val analyze : ?fill:Fill_pattern.t -> ?max_width:int -> Csc.t -> analysis
(** Symbolic analysis: fill pattern, supernodes, panel geometry. *)

val below_rows_start : analysis -> int -> int
(** Index into [l_rowind] of a supernode's below-block row list. *)

val compute_schedule : analysis -> update list array
(** The full compile-time update schedule, per target supernode, with
    per-update contiguity detection. *)

(** {2 Numeric building blocks} (shared with {!Cholesky_parallel}) *)

val init_panel_from_a :
  analysis -> Csc.t -> float array -> int array -> int -> unit
(** Scatter A's values into the (zeroed) panel of one supernode, filling the
    row-offset scratch [relpos]. *)

val apply_update_generic :
  analysis -> float array -> int array -> s:int -> update -> float array -> unit
(** CHOLMOD-style update: GEMM into the work buffer, then scatter. *)

val apply_update_fused :
  analysis -> float array -> int array -> s:int -> update -> unit
(** Sympiler-style update: fused accumulation straight into the target
    panel; pure contiguous AXPY when the schedule proved [coff >= 0]. *)

val factor_panel_generic : analysis -> float array -> int -> unit
(** Jagged potrf + trsm (generic loops). *)

val factor_panel_blas : analysis -> float array -> int -> unit
(** Merged contiguous panel kernel (models a well-tuned BLAS pair). *)

val factor_panel_specialized : analysis -> float array -> int -> unit
(** Peeled width-1 path + fused kernel otherwise. *)

(** Library baseline: numeric phase transposes A (the residual symbolic
    work of §4.2), discovers descendant lists with linked-list bookkeeping
    at numeric time, and applies updates through a GEMM work buffer +
    scatter (the BLAS calling convention). *)
module Cholmod : sig
  type t = analysis

  val analyze : ?fill:Fill_pattern.t -> ?max_width:int -> Csc.t -> t
  val factor : t -> Csc.t -> Csc.t
end

(** Sympiler's VS-Block executor: the schedule, row offsets and contiguity
    flags are baked in at compile time; the specialized variant fuses
    updates into the target panel and peels width-1 supernodes. *)
module Sympiler : sig
  type compiled = {
    an : analysis;
    schedule : update array array;
    specialized : bool;  (** apply the low-level transformations *)
  }

  val compile :
    ?fill:Fill_pattern.t ->
    ?max_width:int ->
    ?specialized:bool ->
    Csc.t ->
    compiled

  val factor : compiled -> Csc.t -> Csc.t
  (** Numeric phase: no transpose, no list maintenance, just arithmetic
      driven by the baked-in schedule. Allocates a fresh factor per call;
      for allocation-free steady state use a {!plan}. *)

  (** {2 Plans} — reusable numeric workspaces for the compile-once /
      execute-many regime. *)

  type plan = {
    c : compiled;
    lx : float array;  (** values of L, plan-owned *)
    relpos : int array;  (** panel row-offset scratch *)
    wbuf : float array;  (** GEMM buffer (generic variant only) *)
    l : Csc.t;  (** factor view sharing [lx]; refreshed by {!factor_ip} *)
  }

  val make_plan : compiled -> plan
  (** Allocate all numeric workspaces once for the compiled pattern. *)

  val factor_ip : plan -> Csc.t -> unit
  (** Numeric factorization into the plan's storage ([plan.l] afterwards
      holds L): zero allocation in steady state. The input must share the
      compiled pattern; values are free to differ between calls. *)
end
