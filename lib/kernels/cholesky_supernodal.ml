open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_prof

(* Supernodal left-looking Cholesky. One engine serves two roles:

   - [Cholmod]: the library baseline. Symbolic analysis (etree, counts,
     pattern, supernodes) runs once, but the numeric phase still performs
     the residual symbolic work the paper attributes to CHOLMOD — it
     transposes A and discovers the descendant-supernode update lists with
     linked-list bookkeeping — and its dense sub-kernels are generic
     runtime-parameterized loops that materialize a GEMM buffer and scatter
     it (the BLAS calling convention).

   - [Sympiler]: the VS-Block executor. The update schedule, row offsets and
     gather maps are all baked in at compile time; the numeric phase applies
     updates with fused scatter loops, and the low-level variant dispatches
     width-1 supernodes to a peeled scalar path (the specialized small
     kernels of §4.2).

   L is stored in plain CSC whose column patterns come from symbolic
   factorization; within a supernode the patterns nest, so each panel is a
   jagged dense block addressed by offsets (see [Dense_blas]). Because the
   rows of a descendant that land at-or-below a target supernode form a
   contiguous suffix of its below-block, all kernels run on contiguous
   ranges. *)

type analysis = {
  n : int;
  sn : Supernodes.t;
  l_colptr : int array;
  l_rowind : int array;
  parent : int array;
  nb : int array; (* below-block height per supernode *)
  flops : float;
  nnz_l : int;
}

(* One descendant update: supernode [d] contributes to the current target
   starting at index [first] of d's below-block; the first [t] of its
   remaining [m] rows land in the target's diagonal block. *)
type update = {
  d : int;
  first : int;
  t : int;
  m : int;
  coff : int;
      (* compile-time contiguity: >= 0 when the m rows map to consecutive
         panel offsets of the target starting at coff; -1 otherwise *)
}

let analyze ?fill ?max_width (a_lower : Csc.t) : analysis =
  let fill =
    match fill with Some f -> f | None -> Fill_pattern.analyze a_lower
  in
  let sn =
    Supernodes.detect_etree ?max_width ~counts:fill.Fill_pattern.counts
      ~parent:fill.Fill_pattern.parent ()
  in
  let l = fill.Fill_pattern.l_pattern in
  let nsuper = Supernodes.nsuper sn in
  let nb =
    Array.init nsuper (fun s ->
        let c0 = sn.Supernodes.sn_ptr.(s) in
        Csc.col_nnz l c0 - Supernodes.width sn s)
  in
  {
    n = fill.Fill_pattern.n;
    sn;
    l_colptr = l.Csc.colptr;
    l_rowind = l.Csc.rowind;
    parent = fill.Fill_pattern.parent;
    nb;
    flops = Fill_pattern.flops fill;
    nnz_l = Csc.nnz l;
  }

(* Index into l_rowind where supernode s's below-block row list begins. *)
let below_rows_start an s =
  let c0 = an.sn.Supernodes.sn_ptr.(s) in
  an.l_colptr.(c0) + (an.sn.Supernodes.sn_ptr.(s + 1) - c0)

(* Precompute the full update schedule: for each descendant d, split its
   below-block rows into runs by target supernode, and detect at compile
   time whether each update's rows occupy consecutive offsets of the target
   panel (enabling the fully contiguous specialized kernel). *)
let compute_schedule (an : analysis) : update list array =
  let nsuper = Supernodes.nsuper an.sn in
  let schedule = Array.make nsuper [] in
  (* Pass 1: split each descendant's below-block rows into runs by target
     supernode. *)
  for d = 0 to nsuper - 1 do
    let start = below_rows_start an d in
    let nb = an.nb.(d) in
    let first = ref 0 in
    while !first < nb do
      let s = an.sn.Supernodes.col_to_sn.(an.l_rowind.(start + !first)) in
      let c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
      let t = ref 0 in
      while !first + !t < nb && an.l_rowind.(start + !first + !t) < c1 do
        incr t
      done;
      schedule.(s) <-
        { d; first = !first; t = !t; m = nb - !first; coff = -1 }
        :: schedule.(s);
      first := !first + !t
    done
  done;
  (* Pass 2: per target supernode, compute panel offsets of its rows and
     mark updates whose rows occupy consecutive offsets. *)
  let panel_off = Array.make an.n 0 in
  let schedule = Array.map List.rev schedule in
  Array.mapi
    (fun s ups ->
      let c0 = an.sn.Supernodes.sn_ptr.(s) in
      let len = Supernodes.width an.sn s + an.nb.(s) in
      for idx = 0 to len - 1 do
        panel_off.(an.l_rowind.(an.l_colptr.(c0) + idx)) <- idx
      done;
      List.map
        (fun u ->
          let start = below_rows_start an u.d + u.first in
          let off0 = panel_off.(an.l_rowind.(start)) in
          let contig = ref true in
          for mm = 1 to u.m - 1 do
            if panel_off.(an.l_rowind.(start + mm)) <> off0 + mm then
              contig := false
          done;
          { u with coff = (if !contig then off0 else -1) })
        ups)
    schedule

(* ---------------- Shared numeric building blocks ---------------- *)

(* Scatter A's column values into the (zeroed) panel of supernode s.
   relpos.(r) = offset of row r within the panel rows. *)
let init_panel_from_a an (a_lower : Csc.t) (lx : float array)
    (relpos : int array) s =
  let c0 = an.sn.Supernodes.sn_ptr.(s)
  and c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
  let lp = an.l_colptr in
  for idx = 0 to (c1 - c0) + an.nb.(s) - 1 do
    relpos.(an.l_rowind.(lp.(c0) + idx)) <- idx
  done;
  for j = c0 to c1 - 1 do
    Array.fill lx lp.(j) (lp.(j + 1) - lp.(j)) 0.0;
    for p = a_lower.Csc.colptr.(j) to a_lower.Csc.colptr.(j + 1) - 1 do
      let i = a_lower.Csc.rowind.(p) in
      if i >= j then
        lx.(lp.(j) + relpos.(i) - (j - c0)) <- a_lower.Csc.values.(p)
    done
  done

(* Generic update application (CHOLMOD-style): GEMM into a work buffer,
   then assemble/scatter into the target panel. *)
let apply_update_generic an (lx : float array) (relpos : int array) ~s u
    (wbuf : float array) =
  let d0 = an.sn.Supernodes.sn_ptr.(u.d)
  and d1 = an.sn.Supernodes.sn_ptr.(u.d + 1) in
  let c0 = an.sn.Supernodes.sn_ptr.(s) in
  let lp = an.l_colptr in
  let m = u.m and t = u.t in
  Array.fill wbuf 0 (m * t) 0.0;
  (* W(mm, tt) = sum over cols j of d of Ld(first+mm, j) * Ld(first+tt, j). *)
  for j = d0 to d1 - 1 do
    let base = lp.(j) + (d1 - j) + u.first in
    for tt = 0 to t - 1 do
      let ltop = lx.(base + tt) in
      if ltop <> 0.0 then begin
        let out = tt * m in
        for mm = tt to m - 1 do
          wbuf.(out + mm) <- wbuf.(out + mm) +. (lx.(base + mm) *. ltop)
        done
      end
    done
  done;
  (* Assembly: subtract W from the target panel. *)
  let rows = below_rows_start an u.d + u.first in
  for tt = 0 to t - 1 do
    let k = an.l_rowind.(rows + tt) in
    let col = lp.(k) - (k - c0) in
    let out = tt * m in
    for mm = tt to m - 1 do
      let r = an.l_rowind.(rows + mm) in
      lx.(col + relpos.(r)) <- lx.(col + relpos.(r)) -. wbuf.(out + mm)
    done
  done

(* Fused update application (Sympiler-style specialized kernel): accumulate
   straight into the target panel, no intermediate buffer. When the
   compile-time schedule proved the target offsets contiguous ([coff] >= 0)
   the inner loop is a pure contiguous AXPY with no index indirection. *)
let apply_update_fused an (lx : float array) (relpos : int array) ~s u =
  let d0 = an.sn.Supernodes.sn_ptr.(u.d)
  and d1 = an.sn.Supernodes.sn_ptr.(u.d + 1) in
  let c0 = an.sn.Supernodes.sn_ptr.(s) in
  let lp = an.l_colptr in
  let rows = below_rows_start an u.d + u.first in
  if u.coff >= 0 then
    for tt = 0 to u.t - 1 do
      let k = an.l_rowind.(rows + tt) in
      let dst = lp.(k) - (k - c0) + u.coff in
      for j = d0 to d1 - 1 do
        let base = lp.(j) + (d1 - j) + u.first in
        let ltop = lx.(base + tt) in
        if ltop <> 0.0 then
          for mm = tt to u.m - 1 do
            lx.(dst + mm) <- lx.(dst + mm) -. (lx.(base + mm) *. ltop)
          done
      done
    done
  else
    for tt = 0 to u.t - 1 do
      let k = an.l_rowind.(rows + tt) in
      let col = lp.(k) - (k - c0) in
      for j = d0 to d1 - 1 do
        let base = lp.(j) + (d1 - j) + u.first in
        let ltop = lx.(base + tt) in
        if ltop <> 0.0 then
          for mm = tt to u.m - 1 do
            let r = an.l_rowind.(rows + mm) in
            lx.(col + relpos.(r)) <- lx.(col + relpos.(r)) -. (lx.(base + mm) *. ltop)
          done
      done
    done

let factor_panel_generic an (lx : float array) s =
  let c0 = an.sn.Supernodes.sn_ptr.(s)
  and c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
  Dense_blas.potrf_jagged an.l_colptr lx ~c0 ~c1;
  if an.nb.(s) > 0 then
    Dense_blas.trsm_jagged an.l_colptr lx ~c0 ~c1 ~nb:an.nb.(s)

(* Panel factorization used by the library baseline: the merged contiguous
   kernel models a well-tuned BLAS potrf/trsm pair. *)
let factor_panel_blas an (lx : float array) s =
  let c0 = an.sn.Supernodes.sn_ptr.(s)
  and c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
  Dense_blas.panel_factor_fused an.l_colptr lx ~c0 ~c1 ~nb:an.nb.(s)

(* Low-level-transformed panel factorization: peel single-column supernodes
   into the scalar sqrt/scale path, fused kernel otherwise. *)
let factor_panel_specialized an (lx : float array) s =
  let c0 = an.sn.Supernodes.sn_ptr.(s)
  and c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
  if c1 - c0 = 1 then Dense_blas.potrf_w1 an.l_colptr lx ~c0 ~nb:an.nb.(s)
  else Dense_blas.panel_factor_fused an.l_colptr lx ~c0 ~c1 ~nb:an.nb.(s)

let max_update_buf an =
  let m = ref 1 in
  let nsuper = Supernodes.nsuper an.sn in
  for s = 0 to nsuper - 1 do
    let w = Supernodes.width an.sn s in
    ignore w;
    m := max !m an.nb.(s)
  done;
  let maxw = ref 1 in
  for s = 0 to nsuper - 1 do
    maxw := max !maxw (Supernodes.width an.sn s)
  done;
  !m * !maxw

let record_factor an =
  if Prof.enabled () then begin
    let k = Prof.cell () in
    k.Prof.flops <- k.Prof.flops + int_of_float an.flops;
    k.Prof.nnz_touched <- k.Prof.nnz_touched + an.nnz_l
  end

let finish an lx =
  record_factor an;
  Csc.create ~nrows:an.n ~ncols:an.n ~colptr:(Array.copy an.l_colptr)
    ~rowind:(Array.copy an.l_rowind) ~values:lx

(* ------------------------- CHOLMOD baseline ------------------------- *)

module Cholmod = struct
  type t = analysis

  let analyze = analyze

  (* Numeric phase: transposes A (residual symbolic work, §4.2), maintains
     descendant lists with link/relink bookkeeping, uses generic kernels. *)
  let factor (an : t) (a_lower : Csc.t) : Csc.t =
    let nsuper = Supernodes.nsuper an.sn in
    (* The transpose both libraries compute inside their numeric phase to
       reach A's upper triangle (paper §4.2); the supernodal panel scatter
       below reads the lower part directly, so only the cost matters. *)
    let upper = Csc.transpose a_lower in
    ignore (Csc.nnz upper);
    let lx = Array.make an.nnz_l 0.0 in
    let relpos = Array.make an.n 0 in
    let wbuf = Array.make (max_update_buf an) 0.0 in
    (* head.(s): first descendant currently filed under target s. *)
    let head = Array.make nsuper (-1) in
    let next = Array.make nsuper (-1) in
    let pos = Array.make nsuper 0 in
    let file d idx =
      let s = an.sn.Supernodes.col_to_sn.(an.l_rowind.(below_rows_start an d + idx)) in
      next.(d) <- head.(s);
      head.(s) <- d
    in
    for s = 0 to nsuper - 1 do
      init_panel_from_a an a_lower lx relpos s;
      let c1 = an.sn.Supernodes.sn_ptr.(s + 1) in
      (* Walk and consume the descendant list discovered at numeric time. *)
      let d = ref head.(s) in
      while !d <> -1 do
        let dn = next.(!d) in
        let first = pos.(!d) in
        let start = below_rows_start an !d in
        let t = ref 0 in
        while first + !t < an.nb.(!d) && an.l_rowind.(start + first + !t) < c1 do
          incr t
        done;
        apply_update_generic an lx relpos ~s
          { d = !d; first; t = !t; m = an.nb.(!d) - first; coff = -1 }
          wbuf;
        pos.(!d) <- first + !t;
        if pos.(!d) < an.nb.(!d) then file !d pos.(!d);
        d := dn
      done;
      factor_panel_blas an lx s;
      pos.(s) <- 0;
      if an.nb.(s) > 0 then file s 0
    done;
    finish an lx
end

(* ------------------------- Sympiler executor ------------------------- *)

module Sympiler = struct
  type compiled = {
    an : analysis;
    schedule : update array array; (* per target supernode, in order *)
    specialized : bool; (* apply low-level transformations *)
  }

  (* "Compile time": symbolic analysis + full update schedule. *)
  let compile ?fill ?max_width ?(specialized = true) (a_lower : Csc.t) :
      compiled =
    let an = analyze ?fill ?max_width a_lower in
    let schedule = Array.map Array.of_list (compute_schedule an) in
    { an; schedule; specialized }

  (* A plan owns every numeric workspace the factorization needs — the
     factor's values array, the row-offset scratch, and (generic variant
     only) the GEMM update buffer — plus a CSC view [l] of the factor whose
     values array IS the plan's [lx]. Creating the plan pays all
     allocation once; [factor_ip] then runs with zero allocation in steady
     state, which is what amortizes inspection across the paper's
     "many numeric executions" scenarios (Newton steps, active-set
     iterations) without GC pressure proportional to nnz(L) per run. *)
  type plan = {
    c : compiled;
    lx : float array; (* values of L, plan-owned *)
    relpos : int array; (* panel row-offset scratch *)
    wbuf : float array; (* GEMM buffer (generic variant only) *)
    l : Csc.t; (* factor view over [lx]; refreshed in place by factor_ip *)
  }

  let make_plan (c : compiled) : plan =
    let an = c.an in
    let lx = Array.make an.nnz_l 0.0 in
    let relpos = Array.make an.n 0 in
    let wbuf =
      if c.specialized then [||] else Array.make (max_update_buf an) 0.0
    in
    let l =
      Csc.create ~nrows:an.n ~ncols:an.n ~colptr:(Array.copy an.l_colptr)
        ~rowind:(Array.copy an.l_rowind) ~values:lx
    in
    { c; lx; relpos; wbuf; l }

  (* Numeric phase: no transpose, no list maintenance — just arithmetic
     driven by the baked-in schedule, writing into the plan's storage. *)
  let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
    let c = p.c in
    let an = c.an in
    let nsuper = Supernodes.nsuper an.sn in
    let lx = p.lx in
    let relpos = p.relpos in
    let wbuf = p.wbuf in
    for s = 0 to nsuper - 1 do
      init_panel_from_a an a_lower lx relpos s;
      let ups = c.schedule.(s) in
      if c.specialized then begin
        for i = 0 to Array.length ups - 1 do
          apply_update_fused an lx relpos ~s ups.(i)
        done;
        factor_panel_specialized an lx s
      end
      else begin
        for i = 0 to Array.length ups - 1 do
          apply_update_generic an lx relpos ~s ups.(i) wbuf
        done;
        factor_panel_generic an lx s
      end
    done;
    record_factor an

  (* Spanned entry point: the begin/end pair is a single-bool no-op while
     tracing is disabled, so the steady state stays allocation-free; the
     [try] keeps the span stack balanced across [Not_positive_definite]. *)
  let factor_ip (p : plan) (a_lower : Csc.t) : unit =
    Sympiler_trace.Trace.begin_span "factor_ip.cholesky_supernodal";
    (try factor_ip_body p a_lower
     with e ->
       Sympiler_trace.Trace.end_span ();
       raise e);
    Sympiler_trace.Trace.end_span ()

  (* One-shot allocating wrapper: a fresh plan per call keeps the original
     value semantics (every factor owns its arrays). *)
  let factor (c : compiled) (a_lower : Csc.t) : Csc.t =
    let p = make_plan c in
    factor_ip p a_lower;
    p.l
end
