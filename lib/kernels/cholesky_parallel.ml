open Sympiler_sparse
open Sympiler_symbolic

(* Level-set parallel supernodal Cholesky on OCaml 5 domains — the
   shared-memory direction of the paper's conclusion, realized the way its
   ParSy follow-on does: the supernodal dependency DAG (supernode s depends
   on every descendant in its update schedule) is levelized at compile
   time, and each level's target supernodes factor in parallel.

   Left-looking makes this race-free without atomics: while processing a
   target supernode the engine writes only that supernode's own panel and
   reads descendant panels finalized at earlier levels, so partitioning a
   level's targets across domains partitions the writes. *)

type compiled = {
  sym : Cholesky_supernodal.Sympiler.compiled;
  nlevels : int;
  level_ptr : int array;
  level_sn : int array; (* supernodes ordered by level, ascending inside *)
}

let compile ?fill ?max_width (a_lower : Csc.t) : compiled =
  let sym = Cholesky_supernodal.Sympiler.compile ?fill ?max_width a_lower in
  let an = sym.Cholesky_supernodal.Sympiler.an in
  let nsuper = Supernodes.nsuper an.Cholesky_supernodal.sn in
  let level = Array.make nsuper 0 in
  (* level(s) = 1 + max level over schedule dependencies; ascending s
     visits descendants first since updates flow forward. *)
  Array.iteri
    (fun s ups ->
      Array.iter
        (fun (u : Cholesky_supernodal.update) ->
          if level.(s) < level.(u.Cholesky_supernodal.d) + 1 then
            level.(s) <- level.(u.Cholesky_supernodal.d) + 1)
        ups)
    sym.Cholesky_supernodal.Sympiler.schedule;
  let nlevels = if nsuper = 0 then 0 else 1 + Array.fold_left max 0 level in
  let counts = Array.make (nlevels + 1) 0 in
  Array.iter (fun lv -> counts.(lv) <- counts.(lv) + 1) level;
  let _ = Utils.cumsum counts in
  let level_ptr = Array.copy counts in
  let next = Array.sub counts 0 (max 0 nlevels) in
  let level_sn = Array.make nsuper 0 in
  for s = 0 to nsuper - 1 do
    level_sn.(next.(level.(s))) <- s;
    next.(level.(s)) <- next.(level.(s)) + 1
  done;
  { sym; nlevels; level_ptr; level_sn }

(* Process one target supernode (panel init, scheduled updates, panel
   factorization) with the specialized kernels and a caller-provided
   relpos scratch (one per domain). *)
let process_target (c : compiled) (a_lower : Csc.t) (lx : float array)
    (relpos : int array) s =
  let an = c.sym.Cholesky_supernodal.Sympiler.an in
  Cholesky_supernodal.init_panel_from_a an a_lower lx relpos s;
  let ups = c.sym.Cholesky_supernodal.Sympiler.schedule.(s) in
  for i = 0 to Array.length ups - 1 do
    Cholesky_supernodal.apply_update_fused an lx relpos ~s ups.(i)
  done;
  Cholesky_supernodal.factor_panel_specialized an lx s

(* A plan owns the factor values, one relpos scratch per domain, and a CSC
   view [l] over those values; repeated [factor_ip] calls reuse all numeric
   storage (the parallel path allocates only what [Domain.spawn] itself
   requires; with one domain the steady state is allocation-free). *)
type plan = {
  c : compiled;
  lx : float array; (* values of L, plan-owned *)
  relpos : int array array; (* per-domain row-offset scratch *)
  l : Csc.t; (* factor view over [lx] *)
}

let make_plan ?(ndomains = 2) (c : compiled) : plan =
  let an = c.sym.Cholesky_supernodal.Sympiler.an in
  let lx = Array.make an.Cholesky_supernodal.nnz_l 0.0 in
  let l =
    Csc.create ~nrows:an.Cholesky_supernodal.n ~ncols:an.Cholesky_supernodal.n
      ~colptr:(Array.copy an.Cholesky_supernodal.l_colptr)
      ~rowind:(Array.copy an.Cholesky_supernodal.l_rowind)
      ~values:lx
  in
  {
    c;
    lx;
    relpos =
      Array.init (max 1 ndomains) (fun _ ->
          Array.make an.Cholesky_supernodal.n 0);
    l;
  }

let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
  let c = p.c in
  let lx = p.lx in
  let relpos = p.relpos in
  let ndomains = Array.length relpos in
  for lv = 0 to c.nlevels - 1 do
    let lo = c.level_ptr.(lv) and hi = c.level_ptr.(lv + 1) in
    let width = hi - lo in
    if ndomains <= 1 || width < 8 then
      for t = lo to hi - 1 do
        process_target c a_lower lx relpos.(0) c.level_sn.(t)
      done
    else begin
      let per = (width + ndomains - 1) / ndomains in
      let work d () =
        let dlo = lo + (d * per) and dhi = min hi (lo + ((d + 1) * per)) in
        for t = dlo to dhi - 1 do
          process_target c a_lower lx relpos.(d) c.level_sn.(t)
        done
      in
      let domains =
        List.init (ndomains - 1) (fun d -> Domain.spawn (work (d + 1)))
      in
      work 0 ();
      List.iter Domain.join domains
    end
  done

(* Spanned entry point: single-bool no-op when tracing is off; the [try]
   keeps the span stack balanced across [Not_positive_definite]. *)
let factor_ip (p : plan) (a_lower : Csc.t) : unit =
  Sympiler_trace.Trace.begin_span "factor_ip.cholesky_parallel";
  (try factor_ip_body p a_lower
   with e ->
     Sympiler_trace.Trace.end_span ();
     raise e);
  Sympiler_trace.Trace.end_span ()

(* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
let factor ?(ndomains = 2) (c : compiled) (a_lower : Csc.t) : Csc.t =
  let p = make_plan ~ndomains c in
  factor_ip p a_lower;
  p.l

(* Schedule validation for tests: every update dependency crosses levels
   forward. *)
let valid_schedule (c : compiled) : bool =
  let nsuper = Array.length c.level_sn in
  let level_of = Array.make nsuper 0 in
  for lv = 0 to c.nlevels - 1 do
    for t = c.level_ptr.(lv) to c.level_ptr.(lv + 1) - 1 do
      level_of.(c.level_sn.(t)) <- lv
    done
  done;
  let ok = ref true in
  Array.iteri
    (fun s ups ->
      Array.iter
        (fun (u : Cholesky_supernodal.update) ->
          if level_of.(u.Cholesky_supernodal.d) >= level_of.(s) then ok := false)
        ups)
    c.sym.Cholesky_supernodal.Sympiler.schedule;
  !ok
