open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_runtime

(* Level-set parallel supernodal Cholesky on the persistent domain pool —
   the shared-memory direction of the paper's conclusion, realized the way
   its ParSy follow-on does: the supernodal dependency DAG (supernode s
   depends on every descendant in its update schedule) is levelized at
   compile time, and each level's target supernodes factor in parallel
   through [Pool.run]'s level barrier.

   Left-looking makes this race-free without atomics: while processing a
   target supernode the engine writes only that supernode's own panel and
   reads descendant panels finalized at earlier levels, so partitioning a
   level's targets across domains partitions the writes. Because every
   target runs the exact same per-supernode operation sequence as the
   sequential engine, the factor is bitwise-identical for any domain count
   and any partition. *)

type compiled = {
  sym : Cholesky_supernodal.Sympiler.compiled;
  nlevels : int;
  level_ptr : int array;
  level_sn : int array; (* supernodes ordered by level, ascending inside *)
  cost : float array; (* per-supernode symbolic flop estimate *)
}

(* Levelize an already-compiled supernodal handle (the facade reuses the
   handle it compiled for the sequential path): level(s) = 1 + max level
   over schedule dependencies; ascending s visits descendants first since
   updates flow forward. The per-supernode costs come from the symbolic
   counts^2 flop model — the input to the plan's cost-balanced partitions. *)
let levelize (sym : Cholesky_supernodal.Sympiler.compiled) : compiled =
  let an = sym.Cholesky_supernodal.Sympiler.an in
  let sn = an.Cholesky_supernodal.sn in
  let nsuper = Supernodes.nsuper sn in
  let level = Array.make nsuper 0 in
  Array.iteri
    (fun s ups ->
      Array.iter
        (fun (u : Cholesky_supernodal.update) ->
          if level.(s) < level.(u.Cholesky_supernodal.d) + 1 then
            level.(s) <- level.(u.Cholesky_supernodal.d) + 1)
        ups)
    sym.Cholesky_supernodal.Sympiler.schedule;
  let nlevels = if nsuper = 0 then 0 else 1 + Array.fold_left max 0 level in
  let counts = Array.make (nlevels + 1) 0 in
  Array.iter (fun lv -> counts.(lv) <- counts.(lv) + 1) level;
  let _ = Utils.cumsum counts in
  let level_ptr = Array.copy counts in
  let next = Array.sub counts 0 (max 0 nlevels) in
  let level_sn = Array.make nsuper 0 in
  for s = 0 to nsuper - 1 do
    level_sn.(next.(level.(s))) <- s;
    next.(level.(s)) <- next.(level.(s)) + 1
  done;
  let lp = an.Cholesky_supernodal.l_colptr in
  let col_counts =
    Array.init an.Cholesky_supernodal.n (fun j -> lp.(j + 1) - lp.(j))
  in
  let colfl = Fill_pattern.col_flops col_counts in
  let cost = Array.make nsuper 0.0 in
  for s = 0 to nsuper - 1 do
    for j = sn.Supernodes.sn_ptr.(s) to sn.Supernodes.sn_ptr.(s + 1) - 1 do
      cost.(s) <- cost.(s) +. colfl.(j)
    done
  done;
  { sym; nlevels; level_ptr; level_sn; cost }

let compile ?fill ?max_width (a_lower : Csc.t) : compiled =
  let fill =
    match fill with Some f -> f | None -> Fill_pattern.analyze a_lower
  in
  levelize (Cholesky_supernodal.Sympiler.compile ~fill ?max_width a_lower)

(* Process one target supernode (panel init, scheduled updates, panel
   factorization) with the specialized kernels and a caller-provided
   relpos scratch (one per domain). *)
let process_target (c : compiled) (a_lower : Csc.t) (lx : float array)
    (relpos : int array) s =
  let an = c.sym.Cholesky_supernodal.Sympiler.an in
  Cholesky_supernodal.init_panel_from_a an a_lower lx relpos s;
  let ups = c.sym.Cholesky_supernodal.Sympiler.schedule.(s) in
  for i = 0 to Array.length ups - 1 do
    Cholesky_supernodal.apply_update_fused an lx relpos ~s ups.(i)
  done;
  Cholesky_supernodal.factor_panel_specialized an lx s

(* Levels narrower than this run inline: a pool dispatch cannot pay off. *)
let par_min_width = 8

(* A plan owns the factor values, one relpos scratch per domain, the
   cost-balanced per-level partitions, and a preallocated worker closure,
   so repeated [factor_ip] calls allocate nothing — parallel or not (the
   pool's steady state is allocation-free too). The [lv]/[a_lower] fields
   are the dispatch arguments the closure reads; [part] and [task] are
   exposed so the bench harness can drive the same chunks through a
   spawn-per-call baseline. *)
type plan = {
  c : compiled;
  lx : float array; (* values of L, plan-owned *)
  relpos : int array array; (* per-domain row-offset scratch *)
  l : Csc.t; (* factor view over [lx] *)
  ndomains : int;
  part : int array array; (* per level: ndomains+1 chunk boundaries *)
  mutable lv : int; (* level being dispatched *)
  mutable a_lower : Csc.t; (* input of the call in flight *)
  task : int -> unit; (* preallocated pool worker *)
}

(* [ndomains] defaults to the pool's size — the library's single sizing
   decision, [Pool.default_size] (SYMPILER_NDOMAINS override, else
   [Domain.recommended_domain_count]). *)
let make_plan ?ndomains (c : compiled) : plan =
  let nd =
    match ndomains with Some k -> max 1 k | None -> Pool.default_size ()
  in
  let an = c.sym.Cholesky_supernodal.Sympiler.an in
  let lx = Array.make an.Cholesky_supernodal.nnz_l 0.0 in
  let l =
    Csc.create ~nrows:an.Cholesky_supernodal.n ~ncols:an.Cholesky_supernodal.n
      ~colptr:(Array.copy an.Cholesky_supernodal.l_colptr)
      ~rowind:(Array.copy an.Cholesky_supernodal.l_rowind)
      ~values:lx
  in
  let part =
    Array.init c.nlevels (fun lv ->
        let lo = c.level_ptr.(lv) in
        let w = c.level_ptr.(lv + 1) - lo in
        let b =
          Partition.balanced ~ntasks:w ~nparts:nd ~cost:(fun t ->
              c.cost.(c.level_sn.(lo + t)))
        in
        (* Shift the in-level boundaries to absolute level_sn indices. *)
        Array.map (fun t -> lo + t) b)
  in
  let rec p =
    {
      c;
      lx;
      relpos =
        Array.init nd (fun _ -> Array.make an.Cholesky_supernodal.n 0);
      l;
      ndomains = nd;
      part;
      lv = 0;
      a_lower = l (* placeholder until the first call *);
      task =
        (fun w ->
          let b = p.part.(p.lv) in
          for t = b.(w) to b.(w + 1) - 1 do
            process_target p.c p.a_lower p.lx p.relpos.(w)
              p.c.level_sn.(t)
          done);
    }
  in
  p

let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
  let c = p.c in
  p.a_lower <- a_lower;
  for lv = 0 to c.nlevels - 1 do
    let lo = c.level_ptr.(lv) and hi = c.level_ptr.(lv + 1) in
    if p.ndomains <= 1 || hi - lo < par_min_width then
      for t = lo to hi - 1 do
        process_target c a_lower p.lx p.relpos.(0) c.level_sn.(t)
      done
    else begin
      p.lv <- lv;
      Pool.run ~nworkers:p.ndomains p.task
    end
  done;
  p.a_lower <- p.l (* do not root the input between calls *)

(* Spanned entry point: single-bool no-op when tracing is off; the [try]
   keeps the span stack balanced across [Not_positive_definite]. *)
let factor_ip (p : plan) (a_lower : Csc.t) : unit =
  Sympiler_trace.Trace.begin_span "factor_ip.cholesky_parallel";
  (try factor_ip_body p a_lower
   with e ->
     Sympiler_trace.Trace.end_span ();
     raise e);
  Sympiler_trace.Trace.end_span ()

(* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
let factor ?ndomains (c : compiled) (a_lower : Csc.t) : Csc.t =
  let p = make_plan ?ndomains c in
  factor_ip p a_lower;
  p.l

(* Schedule validation for tests: every update dependency crosses levels
   forward. *)
let valid_schedule (c : compiled) : bool =
  let nsuper = Array.length c.level_sn in
  let level_of = Array.make nsuper 0 in
  for lv = 0 to c.nlevels - 1 do
    for t = c.level_ptr.(lv) to c.level_ptr.(lv + 1) - 1 do
      level_of.(c.level_sn.(t)) <- lv
    done
  done;
  let ok = ref true in
  Array.iteri
    (fun s ups ->
      Array.iter
        (fun (u : Cholesky_supernodal.update) ->
          if level_of.(u.Cholesky_supernodal.d) >= level_of.(s) then ok := false)
        ups)
    c.sym.Cholesky_supernodal.Sympiler.schedule;
  !ok
