open Sympiler_sparse

(** In-place stage executors over caller-owned workspaces: the numeric
    bodies a compiled {!Sympiler.Pipeline} chains on its one shared vector
    buffer. Plain loop nests — no allocation, no dispatch; the pipeline
    layer owns buffer placement, so "fusing" two stages is calling two of
    these back to back on the same array (or a merged variant, which also
    removes the function boundary).

    Operation order is canonical (ascending columns forward, descending
    backward — the natural-order schedules of {!Trisolve_ref}), so a fused
    chain and a staged chain over the same factors produce
    bitwise-identical results: fusion eliminates copies and dispatch, never
    reorders floating-point arithmetic. *)

val lower_ip : Csc.t -> float array -> unit
(** Forward substitution [L x = x], CSC lower-triangular, diagonal stored
    first per column (explicitly stored unit diagonals are exact). *)

val ltrans_ip : Csc.t -> float array -> unit
(** Backward substitution [L^T x = x] from the same CSC [L]. *)

val solve_pair_ip : Csc.t -> float array -> unit
(** The merged pass: {!lower_ip} then {!ltrans_ip} in one kernel body —
    the stage boundary of a factor+solve pair fused away. *)

val upper_ip : Csc.t -> float array -> unit
(** Backward substitution [U x = x], CSC upper-triangular, diagonal stored
    last per column (LU's U factor). *)

val diag_ip : float array -> float array -> unit
(** Diagonal solve [D x = x] (the middle stage of an LDL^T apply). *)

val csr_lower_unit_ip : Ilu0.compiled -> float array -> float array -> unit
(** ILU(0) forward: unit-lower part of the combined CSR L\U factor. *)

val csr_upper_ip : Ilu0.compiled -> float array -> float array -> unit
(** ILU(0) backward: upper part of the combined CSR L\U factor. *)

val spmv_into : Csc.t -> float array -> float array -> unit
(** [spmv_into a x y]: [y <- A x], column-oriented. *)

val axpy2_ip :
  alpha:float ->
  float array ->
  float array ->
  float array ->
  float array ->
  unit
(** [axpy2_ip ~alpha p q x r]: the fused CG vector updates
    [x <- x + alpha p] and [r <- r - alpha q] in one sweep
    (bitwise-identical to the two loops it replaces). *)

val dot : float array -> float array -> float
