open Sympiler_sparse
open Sympiler_prof

(* Incomplete LU with zero fill, ILU(0): the factors keep exactly the
   pattern of A (L strictly below the diagonal with implicit unit diagonal,
   U on and above it, both stored in A's CSR-like row structure). §5 of the
   paper singles out ILU(0) as the kind of static-index-array kernel earlier
   inspector-executor work handles; here it is driven by the same
   compile-time position maps as the rest of the library.

   The algorithm is the classic IKJ ("row-wise") variant: for each row i,
   eliminate with rows k < i that appear in row i's pattern, dropping any
   update that falls outside the pattern. *)

exception Zero_pivot of int

type compiled = {
  n : int;
  (* Row-major view of A's pattern: CSR arrays plus, per row entry, the
     position of the diagonal entry of that column's row (for pivots). *)
  rowptr : int array;
  colind : int array; (* sorted ascending within each row *)
  diag : int array; (* diag.(i) = index into colind/values of entry (i,i) *)
  csc_map : int array; (* values gather map from the CSC input *)
}

let compile (a : Csc.t) : compiled =
  let n = a.Csc.ncols in
  (* CSR of A = CSC of A^T with a gather map. *)
  let rowptr, colind, csc_map = Csc.transpose_map a in
  let diag = Array.make n (-1) in
  for i = 0 to n - 1 do
    for p = rowptr.(i) to rowptr.(i + 1) - 1 do
      if colind.(p) = i then diag.(i) <- p
    done;
    if diag.(i) < 0 then raise (Zero_pivot i)
  done;
  { n; rowptr; colind; diag; csc_map }

(* Numeric ILU(0). Returns the combined factor in CSR storage: entries of
   row i with column < i are L(i,:) (unit diagonal implicit), the rest is
   U(i,:). *)
type factors = {
  c : compiled;
  values : float array; (* CSR values of L\U *)
}

(* A plan owns the combined factor's values and the dense position map, so
   repeated [factor_ip] calls allocate nothing. *)
type plan = {
  c : compiled;
  pos : int array; (* dense column -> row-entry map (-1 between rows) *)
  f : factors; (* factor view over the plan's values *)
}

let make_plan (c : compiled) : plan =
  {
    c;
    pos = Array.make c.n (-1);
    f = { c; values = Array.make c.rowptr.(c.n) 0.0 };
  }

let factor_ip_body (p : plan) (a : Csc.t) : unit =
  let c = p.c in
  let v = p.f.values in
  let av = a.Csc.values in
  for q = 0 to Array.length v - 1 do
    v.(q) <- av.(c.csc_map.(q))
  done;
  (* pos.(j) = index of column j within the current row, or -1. A run
     aborted by [Zero_pivot] leaves stale entries behind; the fill makes
     the plan reusable after any outcome. *)
  let pos = p.pos in
  Array.fill pos 0 c.n (-1);
  for i = 0 to c.n - 1 do
    let lo = c.rowptr.(i) and hi = c.rowptr.(i + 1) in
    for p = lo to hi - 1 do
      pos.(c.colind.(p)) <- p
    done;
    (* Eliminate with each k < i present in row i. *)
    for p = lo to hi - 1 do
      let k = c.colind.(p) in
      if k < i then begin
        let piv = v.(c.diag.(k)) in
        if piv = 0.0 then raise (Zero_pivot k);
        let lik = v.(p) /. piv in
        v.(p) <- lik;
        (* subtract lik * U(k, j) for j > k, restricted to row i's pattern *)
        for q = c.diag.(k) + 1 to c.rowptr.(k + 1) - 1 do
          let j = c.colind.(q) in
          if pos.(j) >= 0 then v.(pos.(j)) <- v.(pos.(j)) -. (lik *. v.(q))
        done
      end
    done;
    for p = lo to hi - 1 do
      pos.(c.colind.(p)) <- -1
    done
  done;
  if Prof.enabled () then begin
    (* Pattern bound, as for IC(0): per row, each eliminating k < i costs a
       divide plus up to 2*|U(k, k+1:)| update ops. *)
    let k = Prof.cell () in
    let fl = ref 0 in
    for i = 0 to c.n - 1 do
      for p = c.rowptr.(i) to c.rowptr.(i + 1) - 1 do
        let kk = c.colind.(p) in
        if kk < i then
          fl := !fl + 1 + (2 * (c.rowptr.(kk + 1) - c.diag.(kk) - 1))
      done
    done;
    k.Prof.flops <- k.Prof.flops + !fl;
    k.Prof.nnz_touched <- k.Prof.nnz_touched + c.rowptr.(c.n)
  end

(* Spanned entry point: single-bool no-op when tracing is off; the [try]
   keeps the span stack balanced across [Zero_pivot]. *)
let factor_ip (p : plan) (a : Csc.t) : unit =
  Sympiler_trace.Trace.begin_span "factor_ip.ilu0";
  (try factor_ip_body p a
   with e ->
     Sympiler_trace.Trace.end_span ();
     raise e);
  Sympiler_trace.Trace.end_span ()

(* One-shot allocating wrapper (fresh plan = fresh factor values). *)
let factor (c : compiled) (a : Csc.t) : factors =
  let p = make_plan c in
  factor_ip p a;
  p.f

let factorize (a : Csc.t) : factors = factor (compile a) a

(* Apply the preconditioner: solve (L U) x = b with the ILU(0) factors. *)
let solve (f : factors) (b : float array) : float array =
  let c = f.c and v = f.values in
  let x = Array.copy b in
  (* forward: L has implicit unit diagonal, row-wise *)
  for i = 0 to c.n - 1 do
    let s = ref x.(i) in
    for p = c.rowptr.(i) to c.diag.(i) - 1 do
      s := !s -. (v.(p) *. x.(c.colind.(p)))
    done;
    x.(i) <- !s
  done;
  (* backward: U rows *)
  for i = c.n - 1 downto 0 do
    let s = ref x.(i) in
    for p = c.diag.(i) + 1 to c.rowptr.(i + 1) - 1 do
      s := !s -. (v.(p) *. x.(c.colind.(p)))
    done;
    x.(i) <- !s /. v.(c.diag.(i))
  done;
  x

(* On a matrix whose LU factors have no fill, ILU(0) is exact: used by the
   tests (e.g. tridiagonal). *)
