open Sympiler_sparse

(** Level-set (wavefront) parallel sparse triangular solve on the
    persistent domain pool ({!Sympiler_runtime.Pool}) — the shared-memory
    extension the paper's conclusion points to (and its ParSy follow-on
    builds). The dependence graph is levelized at compile time; the
    numeric solve runs levels sequentially, each wide level in two phases:
    the caller finalizes the level's columns (the divisions), then workers
    apply the below-diagonal updates grouped by row over a compile-time
    row-gather structure with ascending-column order per row. Workers own
    disjoint rows (no races, no atomics, no merge sweep), and the pinned
    per-row update order makes results bitwise-identical to the sequential
    sweep for any domain count. Row ranges are cost-balanced at plan time
    from per-row entry counts. *)

type compiled = {
  l : Csc.t;
  nlevels : int;
  level_ptr : int array;
      (** level [l] = [level_cols.\[level_ptr.(l), level_ptr.(l+1))] *)
  level_cols : int array;  (** columns ordered by level, ascending inside *)
  lrow_ptr : int array;
      (** level [l]'s updated rows = [lrows.\[lrow_ptr.(l), lrow_ptr.(l+1))] *)
  lrows : int array;  (** target row indices *)
  lentry_ptr : int array;
      (** row slot [k]'s entries = [\[lentry_ptr.(k), lentry_ptr.(k+1))] *)
  lentry_col : int array;  (** source column, ascending within a row slot *)
  lentry_pos : int array;  (** position of the entry in [l.values] *)
}

val compile : Csc.t -> compiled
(** Levelization ([level j = 1 + max] over dependencies) plus the
    per-level row-gather structure — inspection sets computed once. *)

val solve_ip_sequential : compiled -> float array -> unit
(** Sequential execution of the level schedule (validates the schedule). *)

val solve_ip_parallel : ?ndomains:int -> compiled -> float array -> unit
(** One-shot parallel execution (allocates a transient plan); levels
    narrower than 64 columns run inline. [ndomains] defaults to
    {!Sympiler_runtime.Pool.default_size}. *)

val solve : ?ndomains:int -> compiled -> float array -> float array
(** Functional wrapper over the in-place solvers. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  x : float array;  (** plan-owned solution *)
  ndomains : int;
  row_part : int array array;
      (** per level: [ndomains + 1] cost-balanced boundaries into the
          level's row slots *)
  mutable lv : int;  (** level being dispatched (set before each run) *)
  task : int -> unit;
      (** the preallocated phase-B pool worker; exposed (with
          [lv]/[row_part]) for the bench harness's spawn-per-call
          baseline *)
}

val make_plan : ?ndomains:int -> compiled -> plan
(** [ndomains] defaults to {!Sympiler_runtime.Pool.default_size} — the
    library's single sizing decision ([SYMPILER_NDOMAINS] override, else
    [Domain.recommended_domain_count]). Pass 1 to force the sequential
    path. *)

val solve_ip : plan -> float array -> float array
(** Solve into the plan's buffer (valid until the next call). Zero
    steady-state allocation, sequential or parallel; results are
    bitwise-identical across [ndomains]. *)

val solve_ip_sparse : plan -> Vector.sparse -> float array
(** Sparse-RHS entry used by the facade's level-set plans: scatters [b]
    into the zeroed buffer, then solves as {!solve_ip}. Allocation-free. *)

val valid_schedule : compiled -> bool
(** Every dependence edge crosses levels forward (test helper). *)
