open Sympiler_sparse

(** Level-set (wavefront) parallel sparse triangular solve on OCaml 5
    domains — the shared-memory extension the paper's conclusion points to
    (and its ParSy follow-on builds). The dependence graph is levelized at
    compile time; the numeric solve runs levels sequentially with each
    wide level's columns processed by several domains, using per-domain
    accumulation buffers merged at the level barrier (no data races, no
    atomics). *)

type compiled = {
  l : Csc.t;
  nlevels : int;
  level_ptr : int array;
      (** level [l] = [level_cols.\[level_ptr.(l), level_ptr.(l+1))] *)
  level_cols : int array;  (** columns ordered by level, ascending inside *)
}

val compile : Csc.t -> compiled
(** Levelization: [level j = 1 + max] over dependencies — one more
    inspection set, computed once. *)

val solve_ip_sequential : compiled -> float array -> unit
(** Sequential execution of the level schedule (validates the schedule). *)

val solve_ip_parallel : ?ndomains:int -> compiled -> float array -> unit
(** Parallel execution with [ndomains] domains; levels narrower than 64
    columns run inline. *)

val solve : ?ndomains:int -> compiled -> float array -> float array
(** Functional wrapper over the in-place solvers. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  x : float array;  (** plan-owned solution *)
  bufs : float array array;  (** per-domain accumulators *)
}

val make_plan : ?ndomains:int -> compiled -> plan
(** [ndomains] defaults to 1 (sequential). *)

val solve_ip : plan -> float array -> float array
(** Solve into the plan's buffer (valid until the next call). The
    sequential path is allocation-free in steady state; the parallel path
    reuses the per-domain accumulators and allocates only what
    [Domain.spawn] itself requires. *)

val valid_schedule : compiled -> bool
(** Every dependence edge crosses levels forward (test helper). *)
