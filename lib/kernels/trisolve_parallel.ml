open Sympiler_sparse
open Sympiler_prof
open Sympiler_runtime

(* Level-set (wavefront) parallel sparse triangular solve on the persistent
   domain pool. The paper's conclusion argues its single-core
   transformations "should extend to improve performance on shared ...
   memory systems", and its follow-on work (ParSy) builds exactly this: the
   dependence graph DG_L is levelized at compile time — level l holds the
   columns whose longest dependence chain has length l — and the numeric
   solve processes levels sequentially but each level in parallel, with no
   synchronization finer than a per-level barrier.

   Parallel execution of a level is two-phase and *deterministic*:

   - Phase A (caller, O(width)): finalize x.(j) <- x.(j) / l_jj for every
     column j of the level, in ascending j. Columns of one level never
     depend on each other, so every x.(j) read below is final.

   - Phase B (parallel): apply the below-diagonal updates grouped BY ROW —
     a compile-time CSR-like structure holds, per level, the affected rows
     and each row's (column, position) entries in ascending-column order.
     Workers own disjoint row ranges, so there are no write conflicts and
     no merge sweep; and because each row's updates are applied in the
     same ascending-column order as the sequential column sweep, the
     result is bitwise-identical to the sequential solve for ANY domain
     count and ANY partition (floating-point order is fully pinned).

   The row ranges are cost-balanced at plan time from the per-row entry
   counts (the exact flop count of a row's gather), not split round-robin.

   The level sets are one more inspection set: computed once symbolically,
   consumed by a numeric phase with no symbolic work. On the single-core
   evaluation container the parallel path cannot show speedups; the
   correctness tests exercise it with several domains regardless. *)

type compiled = {
  l : Csc.t;
  nlevels : int;
  level_ptr : int array; (* level l = level_cols.[level_ptr.(l), level_ptr.(l+1)) *)
  level_cols : int array; (* columns ordered by level, ascending inside *)
  (* Row-gather structure for deterministic phase-B updates: *)
  lrow_ptr : int array; (* level l's rows = lrows.[lrow_ptr.(l), lrow_ptr.(l+1)) *)
  lrows : int array; (* target row indices *)
  lentry_ptr : int array; (* row slot k's entries = [lentry_ptr.(k), lentry_ptr.(k+1)) *)
  lentry_col : int array; (* source column j, ascending within a row slot *)
  lentry_pos : int array; (* position of L(i,j) in l.values *)
}

(* Levelize the full matrix (dense-RHS case): level.(j) =
   1 + max over incoming edges (i.e. over k with L(j,k) <> 0, k < j), then
   build the per-level row-gather structure (three O(nnz) sweeps, all at
   compile time). *)
let compile (l : Csc.t) : compiled =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind in
  let level = Array.make n 0 in
  for j = 0 to n - 1 do
    (* edges j -> i for below-diagonal entries: i depends on j *)
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      let i = li.(p) in
      if level.(i) < level.(j) + 1 then level.(i) <- level.(j) + 1
    done
  done;
  let nlevels = 1 + Array.fold_left max 0 level in
  let counts = Array.make (nlevels + 1) 0 in
  Array.iter (fun lv -> counts.(lv) <- counts.(lv) + 1) level;
  let _ = Utils.cumsum counts in
  let level_ptr = Array.copy counts in
  let next = Array.sub counts 0 nlevels in
  let level_cols = Array.make n 0 in
  for j = 0 to n - 1 do
    (* ascending j within each level: deterministic and cache-friendly *)
    level_cols.(next.(level.(j))) <- j;
    next.(level.(j)) <- next.(level.(j)) + 1
  done;
  (* Row-gather structure. Sweep 1: count distinct rows per level. *)
  let stamp = Array.make n (-1) in
  let lrow_ptr = Array.make (nlevels + 1) 0 in
  for lv = 0 to nlevels - 1 do
    for t = level_ptr.(lv) to level_ptr.(lv + 1) - 1 do
      let j = level_cols.(t) in
      for p = lp.(j) + 1 to lp.(j + 1) - 1 do
        let i = li.(p) in
        if stamp.(i) <> lv then begin
          stamp.(i) <- lv;
          lrow_ptr.(lv + 1) <- lrow_ptr.(lv + 1) + 1
        end
      done
    done
  done;
  for lv = 0 to nlevels - 1 do
    lrow_ptr.(lv + 1) <- lrow_ptr.(lv + 1) + lrow_ptr.(lv)
  done;
  let nrows_total = lrow_ptr.(nlevels) in
  let lrows = Array.make (max 1 nrows_total) 0 in
  let slot = Array.make n 0 in
  let lentry_ptr = Array.make (nrows_total + 1) 0 in
  (* Sweep 2: assign row slots (first-appearance order within a level) and
     count each slot's entries. *)
  Array.fill stamp 0 n (-1);
  let rcur = ref 0 in
  for lv = 0 to nlevels - 1 do
    for t = level_ptr.(lv) to level_ptr.(lv + 1) - 1 do
      let j = level_cols.(t) in
      for p = lp.(j) + 1 to lp.(j + 1) - 1 do
        let i = li.(p) in
        if stamp.(i) <> lv then begin
          stamp.(i) <- lv;
          slot.(i) <- !rcur;
          lrows.(!rcur) <- i;
          incr rcur
        end;
        lentry_ptr.(slot.(i) + 1) <- lentry_ptr.(slot.(i) + 1) + 1
      done
    done
  done;
  for k = 0 to nrows_total - 1 do
    lentry_ptr.(k + 1) <- lentry_ptr.(k + 1) + lentry_ptr.(k)
  done;
  let nentries = lentry_ptr.(nrows_total) in
  let lentry_col = Array.make (max 1 nentries) 0 in
  let lentry_pos = Array.make (max 1 nentries) 0 in
  (* Sweep 3: fill each slot's entries; iterating columns in ascending j
     per level pins the within-row order to the sequential sweep's. *)
  Array.fill stamp 0 n (-1);
  let ecur = Array.make (max 1 nrows_total) 0 in
  Array.blit lentry_ptr 0 ecur 0 nrows_total;
  rcur := 0;
  for lv = 0 to nlevels - 1 do
    for t = level_ptr.(lv) to level_ptr.(lv + 1) - 1 do
      let j = level_cols.(t) in
      for p = lp.(j) + 1 to lp.(j + 1) - 1 do
        let i = li.(p) in
        if stamp.(i) <> lv then begin
          stamp.(i) <- lv;
          slot.(i) <- !rcur;
          incr rcur
        end;
        let k = slot.(i) in
        lentry_col.(ecur.(k)) <- j;
        lentry_pos.(ecur.(k)) <- p;
        ecur.(k) <- ecur.(k) + 1
      done
    done
  done;
  if Prof.enabled () then begin
    let c = Prof.cell () in
    c.Prof.levels <- c.Prof.levels + nlevels;
    let maxw = ref 0 in
    for lv = 0 to nlevels - 1 do
      maxw := max !maxw (level_ptr.(lv + 1) - level_ptr.(lv))
    done;
    c.Prof.max_level_width <- max c.Prof.max_level_width !maxw
  end;
  {
    l;
    nlevels;
    level_ptr;
    level_cols;
    lrow_ptr;
    lrows;
    lentry_ptr;
    lentry_col;
    lentry_pos;
  }

(* The sequential column sweep of one level. *)
let solve_level_sequential (c : compiled) (x : float array) ~lo ~hi =
  let l = c.l in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for t = lo to hi - 1 do
    let j = c.level_cols.(t) in
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done

(* The dense-RHS solve visits every column: 2*nnz - n flops. *)
let record_solve (c : compiled) =
  if Prof.enabled () then begin
    let k = Prof.cell () in
    let n = c.l.Csc.ncols in
    let nnz = c.l.Csc.colptr.(n) in
    k.Prof.flops <- k.Prof.flops + ((2 * nnz) - n);
    k.Prof.nnz_touched <- k.Prof.nnz_touched + nnz
  end

(* Sequential reference over the level schedule (validates the schedule
   itself). *)
let solve_ip_sequential (c : compiled) (x : float array) =
  for lv = 0 to c.nlevels - 1 do
    solve_level_sequential c x ~lo:c.level_ptr.(lv) ~hi:c.level_ptr.(lv + 1)
  done;
  record_solve c

(* Levels narrower than this run inline: a pool dispatch cannot pay off.
   The inline path is the sequential sweep, which phase A + phase B
   reproduce bitwise, so the threshold never changes results. *)
let par_min_width = 64

(* A plan owns the dense solution buffer, the cost-balanced per-level row
   partitions, and a preallocated phase-B worker closure, so steady-state
   solves allocate nothing — sequential or parallel. [lv] is the dispatch
   argument the closure reads; it and [row_part]/[task] are exposed so the
   bench harness can drive the same chunks through a spawn-per-call
   baseline. *)
type plan = {
  c : compiled;
  x : float array; (* plan-owned solution *)
  ndomains : int;
  row_part : int array array; (* per level: ndomains+1 row-slot boundaries *)
  mutable lv : int; (* level being dispatched *)
  task : int -> unit; (* preallocated phase-B pool worker *)
}

(* [ndomains] defaults to the pool's size — the library's single sizing
   decision, [Pool.default_size] (SYMPILER_NDOMAINS override, else
   [Domain.recommended_domain_count]). *)
let make_plan ?ndomains (c : compiled) : plan =
  let nd =
    match ndomains with Some k -> max 1 k | None -> Pool.default_size ()
  in
  let n = c.l.Csc.ncols in
  let row_part =
    Array.init c.nlevels (fun lv ->
        let lo = c.lrow_ptr.(lv) in
        let w = c.lrow_ptr.(lv + 1) - lo in
        let b =
          Partition.balanced ~ntasks:w ~nparts:nd ~cost:(fun k ->
              float_of_int
                (c.lentry_ptr.(lo + k + 1) - c.lentry_ptr.(lo + k)))
        in
        Array.map (fun k -> lo + k) b)
  in
  let rec p =
    {
      c;
      x = Array.make n 0.0;
      ndomains = nd;
      row_part;
      lv = 0;
      task =
        (fun w ->
          let c = p.c in
          let x = p.x in
          let lx = c.l.Csc.values in
          let b = p.row_part.(p.lv) in
          for k = b.(w) to b.(w + 1) - 1 do
            let i = c.lrows.(k) in
            let acc = ref x.(i) in
            for e = c.lentry_ptr.(k) to c.lentry_ptr.(k + 1) - 1 do
              acc := !acc -. (lx.(c.lentry_pos.(e)) *. x.(c.lentry_col.(e)))
            done;
            x.(i) <- !acc
          done);
    }
  in
  p

(* Solve the plan's buffer in place (b already blitted into p.x). *)
let run_plan (p : plan) : unit =
  let c = p.c in
  if p.ndomains <= 1 then solve_ip_sequential c p.x
  else begin
    let l = c.l in
    let lp = l.Csc.colptr and lx = l.Csc.values in
    let x = p.x in
    for lv = 0 to c.nlevels - 1 do
      let lo = c.level_ptr.(lv) and hi = c.level_ptr.(lv + 1) in
      if hi - lo < par_min_width then solve_level_sequential c x ~lo ~hi
      else begin
        (* Phase A: finalize the level's columns (ascending j). *)
        for t = lo to hi - 1 do
          let j = c.level_cols.(t) in
          x.(j) <- x.(j) /. lx.(lp.(j))
        done;
        (* Phase B: row-partitioned update gather through the pool. *)
        p.lv <- lv;
        Pool.run ~nworkers:p.ndomains p.task
      end
    done;
    record_solve c
  end

let solve_ip (p : plan) (b : float array) : float array =
  let n = Array.length p.x in
  if Array.length b <> n then
    invalid_arg "Trisolve_parallel.solve_ip: RHS dimension mismatch";
  (* Span begins after validation so an invalid call leaves no open span;
     the body itself cannot raise. *)
  Sympiler_trace.Trace.begin_span "solve_ip.trisolve_parallel";
  Array.blit b 0 p.x 0 n;
  run_plan p;
  Sympiler_trace.Trace.end_span ();
  p.x

(* Sparse-RHS entry used by the facade's level-set plans: scatter b into
   the (zeroed) buffer, then the same dense solve. Allocation-free. *)
let solve_ip_sparse (p : plan) (b : Vector.sparse) : float array =
  if b.Vector.n <> Array.length p.x then
    invalid_arg "Trisolve_parallel.solve_ip_sparse: RHS dimension mismatch";
  Sympiler_trace.Trace.begin_span "solve_ip.trisolve_parallel";
  Array.fill p.x 0 (Array.length p.x) 0.0;
  let idx = b.Vector.indices and vals = b.Vector.values in
  for t = 0 to Array.length idx - 1 do
    p.x.(idx.(t)) <- vals.(t)
  done;
  run_plan p;
  Sympiler_trace.Trace.end_span ();
  p.x

(* One-shot wrappers (fresh plan = fresh buffers + partitions). *)
let solve_ip_parallel ?ndomains (c : compiled) (x : float array) =
  match ndomains with
  | Some k when k <= 1 -> solve_ip_sequential c x
  | _ ->
      let p = make_plan ?ndomains c in
      Array.blit x 0 p.x 0 (Array.length x);
      run_plan p;
      Array.blit p.x 0 x 0 (Array.length x)

let solve ?ndomains (c : compiled) (b : float array) : float array =
  let x = Array.copy b in
  (match ndomains with
  | Some k when k > 1 -> solve_ip_parallel ~ndomains:k c x
  | Some _ -> solve_ip_sequential c x
  | None -> solve_ip_sequential c x);
  x

(* Schedule validation used by tests: every dependence edge crosses levels
   forward. *)
let valid_schedule (c : compiled) : bool =
  let n = c.l.Csc.ncols in
  let level_of = Array.make n 0 in
  for lv = 0 to c.nlevels - 1 do
    for t = c.level_ptr.(lv) to c.level_ptr.(lv + 1) - 1 do
      level_of.(c.level_cols.(t)) <- lv
    done
  done;
  let ok = ref true in
  Csc.iter c.l (fun i j _ ->
      if i <> j && level_of.(i) <= level_of.(j) then ok := false);
  !ok
