open Sympiler_sparse
open Sympiler_prof

(* Level-set (wavefront) parallel sparse triangular solve on OCaml 5
   domains. The paper's conclusion argues its single-core transformations
   "should extend to improve performance on shared ... memory systems", and
   its follow-on work (ParSy) builds exactly this: the dependence graph
   DG_L is levelized at compile time — level l holds the columns whose
   longest dependence chain has length l — and the numeric solve processes
   levels sequentially but each level's columns in parallel, with no
   synchronization finer than a per-level barrier.

   The level sets are one more inspection set: computed once symbolically,
   consumed by a numeric phase with no symbolic work. On the single-core
   evaluation container the parallel path cannot show speedups; the
   correctness tests exercise it with several domains regardless. *)

type compiled = {
  l : Csc.t;
  nlevels : int;
  level_ptr : int array; (* level l = level_cols.[level_ptr.(l), level_ptr.(l+1)) *)
  level_cols : int array; (* columns ordered by level, ascending inside *)
}

(* Levelize the full matrix (dense-RHS case): level.(j) =
   1 + max over incoming edges (i.e. over k with L(j,k) <> 0, k < j). *)
let compile (l : Csc.t) : compiled =
  let n = l.Csc.ncols in
  let level = Array.make n 0 in
  for j = 0 to n - 1 do
    (* edges j -> i for below-diagonal entries: i depends on j *)
    for p = l.Csc.colptr.(j) + 1 to l.Csc.colptr.(j + 1) - 1 do
      let i = l.Csc.rowind.(p) in
      if level.(i) < level.(j) + 1 then level.(i) <- level.(j) + 1
    done
  done;
  let nlevels = 1 + Array.fold_left max 0 level in
  let counts = Array.make (nlevels + 1) 0 in
  Array.iter (fun lv -> counts.(lv) <- counts.(lv) + 1) level;
  let _ = Utils.cumsum counts in
  let level_ptr = Array.copy counts in
  let next = Array.sub counts 0 nlevels in
  let level_cols = Array.make n 0 in
  for j = 0 to n - 1 do
    (* ascending j within each level: deterministic and cache-friendly *)
    level_cols.(next.(level.(j))) <- j;
    next.(level.(j)) <- next.(level.(j)) + 1
  done;
  if Prof.enabled () then begin
    let c = Prof.counters in
    c.Prof.levels <- c.Prof.levels + nlevels;
    let maxw = ref 0 in
    for lv = 0 to nlevels - 1 do
      maxw := max !maxw (level_ptr.(lv + 1) - level_ptr.(lv))
    done;
    c.Prof.max_level_width <- max c.Prof.max_level_width !maxw
  end;
  { l; nlevels; level_ptr; level_cols }

(* The column update of the forward solve. Columns within one level never
   touch the same x entries as sources (their diagonals are independent),
   but two columns of a level may both update a common later row; those
   updates are combined with an atomic-free split: each domain owns a
   contiguous chunk of the level and updates x directly — safe because a
   row updated by two columns of the same level is, by construction, in a
   LATER level than both, and reads of x.(j) only happen at j's own level.
   The only hazard would be two simultaneous read-modify-writes of the same
   x.(i); we serialize those with per-domain accumulation buffers merged at
   the level barrier. *)
let solve_level_sequential (c : compiled) (x : float array) ~lo ~hi =
  let l = c.l in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for t = lo to hi - 1 do
    let j = c.level_cols.(t) in
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done

(* The dense-RHS solve visits every column: 2*nnz - n flops. *)
let record_solve (c : compiled) =
  if Prof.enabled () then begin
    let k = Prof.counters in
    let n = c.l.Csc.ncols in
    let nnz = c.l.Csc.colptr.(n) in
    k.Prof.flops <- k.Prof.flops + ((2 * nnz) - n);
    k.Prof.nnz_touched <- k.Prof.nnz_touched + nnz
  end

(* Sequential reference over the level schedule (validates the schedule
   itself). *)
let solve_ip_sequential (c : compiled) (x : float array) =
  for lv = 0 to c.nlevels - 1 do
    solve_level_sequential c x ~lo:c.level_ptr.(lv) ~hi:c.level_ptr.(lv + 1)
  done;
  record_solve c

(* Parallel solve over caller-provided per-domain buffers (all-zero on
   entry and on exit). Each level is split into chunks; every domain
   accumulates its below-diagonal updates into its private buffer, and
   buffers are merged (sequentially) at the barrier, so no two domains ever
   write the same location concurrently. *)
let solve_ip_parallel_with (bufs : float array array) (c : compiled)
    (x : float array) =
  let ndomains = Array.length bufs in
  if ndomains <= 1 then solve_ip_sequential c x
  else begin
    let l = c.l in
    let n = l.Csc.ncols in
    let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
    let chunk_of lv d =
      let lo = c.level_ptr.(lv) and hi = c.level_ptr.(lv + 1) in
      let w = hi - lo in
      let per = (w + ndomains - 1) / ndomains in
      (min hi (lo + (d * per)), min hi (lo + ((d + 1) * per)))
    in
    for lv = 0 to c.nlevels - 1 do
      let width = c.level_ptr.(lv + 1) - c.level_ptr.(lv) in
      if width < 64 then
        (* Narrow level: spawn/merge overhead (O(n) buffer sweep) cannot
           pay off; run it inline. *)
        solve_level_sequential c x ~lo:c.level_ptr.(lv)
          ~hi:c.level_ptr.(lv + 1)
      else begin
      let work d () =
        let buf = bufs.(d) in
        let lo, hi = chunk_of lv d in
        for t = lo to hi - 1 do
          let j = c.level_cols.(t) in
          (* x.(j) is final: all updates to j merged at earlier barriers *)
          let xj = x.(j) /. lx.(lp.(j)) in
          x.(j) <- xj;
          for p = lp.(j) + 1 to lp.(j + 1) - 1 do
            buf.(li.(p)) <- buf.(li.(p)) +. (lx.(p) *. xj)
          done
        done
      in
      let domains =
        List.init (ndomains - 1) (fun d -> Domain.spawn (work (d + 1)))
      in
      work 0 ();
      List.iter Domain.join domains;
      (* Merge: subtract each domain's accumulated updates. Touch only rows
         that can still change (levels are processed in order, so a simple
         full sweep is correct; cost is O(n) per level and the buffers are
         reused). *)
      for d = 0 to ndomains - 1 do
        let buf = bufs.(d) in
        for i = 0 to n - 1 do
          if buf.(i) <> 0.0 then begin
            x.(i) <- x.(i) -. buf.(i);
            buf.(i) <- 0.0
          end
        done
      done
      end
    done;
    record_solve c
  end

let solve_ip_parallel ?(ndomains = 2) (c : compiled) (x : float array) =
  if ndomains <= 1 then solve_ip_sequential c x
  else
    let n = c.l.Csc.ncols in
    solve_ip_parallel_with (Array.init ndomains (fun _ -> Array.make n 0.0)) c x

let solve ?ndomains (c : compiled) (b : float array) : float array =
  let x = Array.copy b in
  (match ndomains with
  | Some k when k > 1 -> solve_ip_parallel ~ndomains:k c x
  | _ -> solve_ip_sequential c x);
  x

(* A plan owns the dense solution buffer and the per-domain accumulation
   buffers, so steady-state solves reuse all numeric storage; the
   sequential path ([ndomains <= 1]) is allocation-free, the parallel path
   allocates only what [Domain.spawn] itself requires. *)
type plan = {
  c : compiled;
  x : float array; (* plan-owned solution *)
  bufs : float array array; (* per-domain accumulators (all-zero at rest) *)
}

let make_plan ?(ndomains = 1) (c : compiled) : plan =
  let n = c.l.Csc.ncols in
  {
    c;
    x = Array.make n 0.0;
    bufs =
      (if ndomains <= 1 then [||]
       else Array.init ndomains (fun _ -> Array.make n 0.0));
  }

let solve_ip (p : plan) (b : float array) : float array =
  let n = Array.length p.x in
  if Array.length b <> n then
    invalid_arg "Trisolve_parallel.solve_ip: RHS dimension mismatch";
  (* Span begins after validation so an invalid call leaves no open span;
     the body itself cannot raise. *)
  Sympiler_trace.Trace.begin_span "solve_ip.trisolve_parallel";
  Array.blit b 0 p.x 0 n;
  if Array.length p.bufs <= 1 then solve_ip_sequential p.c p.x
  else solve_ip_parallel_with p.bufs p.c p.x;
  Sympiler_trace.Trace.end_span ();
  p.x

(* Schedule validation used by tests: every dependence edge crosses levels
   forward. *)
let valid_schedule (c : compiled) : bool =
  let n = c.l.Csc.ncols in
  let level_of = Array.make n 0 in
  for lv = 0 to c.nlevels - 1 do
    for t = c.level_ptr.(lv) to c.level_ptr.(lv + 1) - 1 do
      level_of.(c.level_cols.(t)) <- lv
    done
  done;
  let ok = ref true in
  Csc.iter c.l (fun i j _ ->
      if i <> j && level_of.(i) <= level_of.(j) then ok := false);
  !ok
