open Sympiler_sparse

(** Level-set parallel supernodal Cholesky on the persistent domain pool
    ({!Sympiler_runtime.Pool}) — the shared-memory direction of the paper's
    conclusion, in the style of its ParSy follow-on: the supernodal
    dependency DAG is levelized at compile time and each level's target
    supernodes factor in parallel, partitioned by the symbolic counts²
    flop estimates ({!Sympiler_symbolic.Fill_pattern.col_flops}).

    Race-free without atomics: a left-looking target writes only its own
    panel and reads descendant panels finalized at earlier levels — and
    because each target runs the same operation sequence as the sequential
    engine, factors are bitwise-identical for any domain count. Steady
    state allocates nothing (the worker closure lives in the plan). On the
    single-core evaluation container the parallel path shows no speedup;
    correctness is exercised with several domains regardless. *)

type compiled = {
  sym : Cholesky_supernodal.Sympiler.compiled;
  nlevels : int;
  level_ptr : int array;
  level_sn : int array;  (** supernodes ordered by level *)
  cost : float array;
      (** per-supernode symbolic flop estimate (counts² model), input of
          the plan's cost-balanced partitions *)
}

val compile :
  ?fill:Sympiler_symbolic.Fill_pattern.t -> ?max_width:int -> Csc.t -> compiled
(** Supernodal compilation plus DAG levelization (one more inspection
    set). *)

val levelize : Cholesky_supernodal.Sympiler.compiled -> compiled
(** Levelize an already-compiled supernodal handle (no re-analysis); used
    by the facade to derive a parallel plan from its sequential handle. *)

val factor : ?ndomains:int -> compiled -> Csc.t -> Csc.t
(** Numeric factorization; levels narrower than 8 supernodes run inline.
    Allocates a fresh factor per call; use a {!plan} for steady state.
    [ndomains] defaults to {!Sympiler_runtime.Pool.default_size}. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  lx : float array;  (** values of L, plan-owned *)
  relpos : int array array;  (** per-domain row-offset scratch *)
  l : Csc.t;  (** factor view sharing [lx]; refreshed by {!factor_ip} *)
  ndomains : int;
  part : int array array;
      (** per level: [ndomains + 1] cost-balanced boundaries into
          [level_sn] *)
  mutable lv : int;  (** level being dispatched (set before each run) *)
  mutable a_lower : Csc.t;  (** input of the call in flight *)
  task : int -> unit;
      (** the preallocated pool worker; exposed (with [lv]/[part]) so the
          bench harness can drive the same chunks through a spawn-per-call
          baseline *)
}

val make_plan : ?ndomains:int -> compiled -> plan
(** [ndomains] defaults to {!Sympiler_runtime.Pool.default_size} — the
    library's single sizing decision ([SYMPILER_NDOMAINS] override, else
    [Domain.recommended_domain_count]). Pass 1 to force the sequential
    path. *)

val factor_ip : plan -> Csc.t -> unit
(** Numeric factorization into the plan's storage; zero allocation in
    steady state, sequential or parallel (the pool barrier allocates
    nothing either). *)

val process_target : compiled -> Csc.t -> float array -> int array -> int -> unit
(** One target supernode's panel init + scheduled updates + factorization
    (the unit of level-parallel work); exposed for the bench baseline. *)

val valid_schedule : compiled -> bool
(** Every update dependency crosses levels forward (test helper). *)
