open Sympiler_sparse

(** Level-set parallel supernodal Cholesky on OCaml 5 domains — the
    shared-memory direction of the paper's conclusion, in the style of its
    ParSy follow-on: the supernodal dependency DAG is levelized at compile
    time and each level's target supernodes factor in parallel. Race-free
    without atomics: a left-looking target writes only its own panel and
    reads descendant panels finalized at earlier levels. On the single-core
    evaluation container the parallel path shows no speedup; correctness is
    exercised with several domains regardless. *)

type compiled = {
  sym : Cholesky_supernodal.Sympiler.compiled;
  nlevels : int;
  level_ptr : int array;
  level_sn : int array;  (** supernodes ordered by level *)
}

val compile :
  ?fill:Sympiler_symbolic.Fill_pattern.t -> ?max_width:int -> Csc.t -> compiled
(** Supernodal compilation plus DAG levelization (one more inspection
    set). *)

val factor : ?ndomains:int -> compiled -> Csc.t -> Csc.t
(** Numeric factorization; levels narrower than 8 supernodes run inline.
    Allocates a fresh factor per call; use a {!plan} for steady state. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  lx : float array;  (** values of L, plan-owned *)
  relpos : int array array;  (** per-domain row-offset scratch *)
  l : Csc.t;  (** factor view sharing [lx]; refreshed by {!factor_ip} *)
}

val make_plan : ?ndomains:int -> compiled -> plan
(** [ndomains] defaults to 2; pass 1 for the allocation-free sequential
    steady state. *)

val factor_ip : plan -> Csc.t -> unit
(** Numeric factorization into the plan's storage; reuses all numeric
    workspaces (only [Domain.spawn] itself allocates when parallel). *)

val valid_schedule : compiled -> bool
(** Every update dependency crosses levels forward (test helper). *)
