open Sympiler_sparse

(** Incomplete Cholesky with zero fill, IC(0): the factor keeps exactly the
    pattern of lower(A) (updates landing outside it are dropped). A §3.3
    method used as the preconditioner in [examples/precond_cg.ml]. On a
    matrix whose exact factor has no fill, IC(0) equals the exact factor. *)

exception Not_positive_definite of int

type compiled = {
  n : int;
  colptr : int array;
  rowind : int array;
  row_ptr : int array;
      (** flattened row lists: row [j]'s update sources occupy
          [\[row_ptr.(j), row_ptr.(j+1))] *)
  row_col : int array;  (** columns [r < j] with [A(j,r) <> 0] *)
  row_pos : int array;  (** storage position of each such entry *)
}

val compile : Csc.t -> compiled
(** Precompute row lists and positions from the lower part of A, making the
    numeric phase decoupled. *)

val factor : compiled -> Csc.t -> Csc.t
(** Numeric IC(0); the input's values may change as long as the pattern
    matches the compiled one. Allocates a fresh factor per call; use a
    {!plan} for allocation-free steady state. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  lx : float array;  (** values of L, plan-owned *)
  pos : int array;  (** dense row→position scratch *)
  l : Csc.t;  (** factor view sharing [lx]; refreshed by {!factor_ip} *)
}

val make_plan : compiled -> plan

val factor_ip : plan -> Csc.t -> unit
(** Numeric IC(0) into the plan's storage; zero allocation in steady
    state, reusable even after {!Not_positive_definite}. *)

val factorize : Csc.t -> Csc.t
(** [compile] + [factor]. *)
