open Sympiler_sparse

(* In-place stage executors over caller-owned workspaces: the numeric
   bodies a compiled pipeline chains on its one shared vector buffer. Each
   is a plain loop nest with no allocation and no dispatch — the pipeline
   layer owns buffer placement, so fusing two stages is calling two of
   these back to back on the same array (or one of the merged variants
   below, which also removes the function boundary).

   Operation order is canonical (ascending columns forward, descending
   backward — the natural-order schedules of [Trisolve_ref]), so a fused
   chain and a staged chain over the same factors produce bitwise-identical
   results: fusion eliminates copies and dispatch, never reorders
   floating-point arithmetic. *)

(* Forward substitution L x = x for CSC lower-triangular L with the
   diagonal stored first in each column (unit diagonals may be stored
   explicitly; dividing by 1.0 is exact). Same loop as
   [Trisolve_ref.naive_ip], without the profiling epilogue. *)
let lower_ip (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for j = 0 to n - 1 do
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done

(* Backward substitution L^T x = x from the same CSC L (column j of L is
   row j of L^T, so the dot product reads one column). Same loop as
   [Trisolve_ref.transpose_ip]. *)
let ltrans_ip (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for j = n - 1 downto 0 do
    let s = ref x.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      s := !s -. (lx.(p) *. x.(li.(p)))
    done;
    x.(j) <- !s /. lx.(lp.(j))
  done

(* The merged factor+solve pass: forward and transposed substitution in one
   kernel body — the L / L^T stage boundary of a factor+solve pair fused
   away (one call, one buffer, no intermediate vector). *)
let solve_pair_ip (l : Csc.t) (x : float array) =
  let n = l.Csc.ncols in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  for j = 0 to n - 1 do
    let xj = x.(j) /. lx.(lp.(j)) in
    x.(j) <- xj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done;
  for j = n - 1 downto 0 do
    let s = ref x.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      s := !s -. (lx.(p) *. x.(li.(p)))
    done;
    x.(j) <- !s /. lx.(lp.(j))
  done

(* Backward substitution U x = x for CSC upper-triangular U with the
   diagonal stored last in each column (LU's U factor). *)
let upper_ip (u : Csc.t) (x : float array) =
  let n = u.Csc.ncols in
  let up = u.Csc.colptr and ui = u.Csc.rowind and ux = u.Csc.values in
  for j = n - 1 downto 0 do
    let xj = x.(j) /. ux.(up.(j + 1) - 1) in
    x.(j) <- xj;
    for p = up.(j) to up.(j + 1) - 2 do
      x.(ui.(p)) <- x.(ui.(p)) -. (ux.(p) *. xj)
    done
  done

(* Diagonal solve D x = x (the middle stage of an LDL^T apply). *)
let diag_ip (d : float array) (x : float array) =
  for i = 0 to Array.length d - 1 do
    x.(i) <- x.(i) /. d.(i)
  done

(* ILU(0) applies run on the combined CSR L\U factor (unit L left of each
   diagonal position, U from it on): forward with implicit unit diagonal,
   then backward. *)
let csr_lower_unit_ip (c : Ilu0.compiled) (v : float array) (x : float array) =
  let n = c.Ilu0.n in
  let rp = c.Ilu0.rowptr and ci = c.Ilu0.colind and dg = c.Ilu0.diag in
  for i = 0 to n - 1 do
    let s = ref x.(i) in
    for p = rp.(i) to dg.(i) - 1 do
      s := !s -. (v.(p) *. x.(ci.(p)))
    done;
    x.(i) <- !s
  done

let csr_upper_ip (c : Ilu0.compiled) (v : float array) (x : float array) =
  let n = c.Ilu0.n in
  let rp = c.Ilu0.rowptr and ci = c.Ilu0.colind and dg = c.Ilu0.diag in
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for p = dg.(i) + 1 to rp.(i + 1) - 1 do
      s := !s -. (v.(p) *. x.(ci.(p)))
    done;
    x.(i) <- !s /. v.(dg.(i))
  done

(* y <- A x, column-oriented (CSC): the SpMV stage. *)
let spmv_into (a : Csc.t) (x : float array) (y : float array) =
  let n = a.Csc.ncols in
  let ap = a.Csc.colptr and ai = a.Csc.rowind and av = a.Csc.values in
  Array.fill y 0 (Array.length y) 0.0;
  for j = 0 to n - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for p = ap.(j) to ap.(j + 1) - 1 do
        y.(ai.(p)) <- y.(ai.(p)) +. (av.(p) *. xj)
      done
  done

(* The fused CG vector updates: x <- x + alpha p and r <- r - alpha q in
   one sweep (elementwise independent, so bitwise-identical to the two
   separate loops it replaces — the fusion removes one full traversal). *)
let axpy2_ip ~alpha (p : float array) (q : float array) (x : float array)
    (r : float array) =
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) +. (alpha *. p.(i));
    r.(i) <- r.(i) -. (alpha *. q.(i))
  done

let dot (a : float array) (b : float array) =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s
