open Sympiler_sparse
open Sympiler_symbolic

(* Non-supernodal (simplicial) sparse Cholesky, A = L L^T, A given by its
   lower-triangular part in CSC form.

   Two variants:
   - [Eigen]-like baseline: the symbolic phase ("analyzePattern") computes
     only the elimination tree and column counts; the numeric phase, like
     Eigen's SimplicialLLT, still transposes A and recomputes every row
     pattern with an etree up-traversal — the coupled symbolic work the
     paper calls out in §4.2.
   - [Decoupled] Sympiler variant (the Cholesky VI-Prune baseline of
     Figure 7): row patterns (prune-sets), the full pattern of L, and a
     transpose gather map are all precomputed, so the numeric phase touches
     numbers only. *)

exception Not_positive_definite of int

(* ------------------------- Eigen-like baseline ------------------------- *)

module Eigen = struct
  type analysis = {
    n : int;
    parent : int array;
    l_colptr : int array; (* storage allocation for L *)
  }

  (* Symbolic phase: etree + column counts (allocation only). *)
  let analyze (a_lower : Csc.t) : analysis =
    let n = a_lower.Csc.ncols in
    let parent = Etree.compute a_lower in
    let upper = Csc.transpose a_lower in
    let work = Ereach.make_workspace n in
    let counts = Array.make (n + 1) 0 in
    for k = 0 to n - 1 do
      let row = Ereach.row_pattern ~upper ~parent ~work k in
      counts.(k) <- counts.(k) + 1;
      Array.iter (fun j -> counts.(j) <- counts.(j) + 1) row
    done;
    let l_colptr = counts in
    let _ = Utils.cumsum l_colptr in
    { n; parent; l_colptr }

  (* Numeric phase: up-looking factorization. Recomputes the transpose of A
     and every row pattern (mark/stack up-traversals), as Eigen does. *)
  let factor (an : analysis) (a_lower : Csc.t) : Csc.t =
    let n = an.n in
    let parent = an.parent in
    let upper = Csc.transpose a_lower (* numeric-phase transpose *) in
    let lp = Array.copy an.l_colptr in
    let nnz_l = lp.(n) in
    let li = Array.make nnz_l 0 in
    let lx = Array.make nnz_l 0.0 in
    let nzcount = Array.make n 0 in
    let x = Array.make n 0.0 in
    let mark = Array.make n (-1) in
    let stack = Array.make n 0 in
    let pstack = Array.make n 0 in
    for k = 0 to n - 1 do
      (* Scatter column k of the upper triangle and build the row pattern
         stack (topological order) by climbing the etree. *)
      let top = ref n in
      let d = ref 0.0 in
      mark.(k) <- k;
      for p = upper.Csc.colptr.(k) to upper.Csc.colptr.(k + 1) - 1 do
        let i = upper.Csc.rowind.(p) in
        if i <= k then begin
          if i = k then d := upper.Csc.values.(p)
          else begin
            x.(i) <- upper.Csc.values.(p);
            let len = ref 0 in
            let j = ref i in
            while !j <> -1 && !j < k && mark.(!j) <> k do
              pstack.(!len) <- !j;
              incr len;
              mark.(!j) <- k;
              j := parent.(!j)
            done;
            while !len > 0 do
              decr len;
              decr top;
              stack.(!top) <- pstack.(!len)
            done
          end
        end
      done;
      (* Sparse up-looking solve along the pattern. *)
      for t = !top to n - 1 do
        let j = stack.(t) in
        let lkj = x.(j) /. lx.(lp.(j)) in
        x.(j) <- 0.0;
        for p = lp.(j) + 1 to lp.(j) + nzcount.(j) - 1 do
          x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. lkj)
        done;
        d := !d -. (lkj *. lkj);
        let p = lp.(j) + nzcount.(j) in
        li.(p) <- k;
        lx.(p) <- lkj;
        nzcount.(j) <- nzcount.(j) + 1
      done;
      if !d <= 0.0 then raise (Not_positive_definite k);
      li.(lp.(k)) <- k;
      lx.(lp.(k)) <- sqrt !d;
      nzcount.(k) <- 1
    done;
    Csc.create ~nrows:n ~ncols:n ~colptr:lp ~rowind:li ~values:lx
end

(* -------------------- Decoupled (Sympiler) variant --------------------- *)

module Decoupled = struct
  type compiled = {
    n : int;
    rp_ptr : int array; (* prune-set offsets, length n+1 *)
    rp_ind : int array; (* packed prune-sets, ascending per row *)
    l_colptr : int array;
    l_rowind : int array; (* full precomputed pattern of L *)
    up_colptr : int array;
    up_rowind : int array;
    up_map : int array; (* gather map into a_lower.values *)
    flops : float;
  }

  (* "Compile time": full symbolic factorization + transpose gather map.
     [fill] lets callers share an already-computed symbolic analysis. The
     packed prune-set store is flattened into plain int arrays here, once,
     so the numeric phase reads them allocation-free (int32 Bigarray reads
     box without flambda). *)
  let compile ?fill (a_lower : Csc.t) : compiled =
    let fill =
      match fill with Some f -> f | None -> Fill_pattern.analyze a_lower
    in
    let up_colptr, up_rowind, up_map = Csc.transpose_map a_lower in
    let store = Fill_pattern.row_store fill in
    {
      n = fill.Fill_pattern.n;
      rp_ptr = Bigstore.ptr store;
      rp_ind = Bigstore.flatten store;
      l_colptr = fill.Fill_pattern.l_pattern.Csc.colptr;
      l_rowind = fill.Fill_pattern.l_pattern.Csc.rowind;
      up_colptr;
      up_rowind;
      up_map;
      flops = Fill_pattern.flops fill;
    }

  (* A plan owns the factor values, the per-column fill cursors, and the
     sparse accumulator, plus a CSC view [l] over those values; repeated
     [factor_ip] calls then allocate nothing. *)
  type plan = {
    c : compiled;
    lx : float array; (* values of L, plan-owned *)
    nzcount : int array; (* per-column fill cursor *)
    x : float array; (* sparse accumulator (all-zero between calls) *)
    l : Csc.t; (* factor view over [lx] *)
  }

  let make_plan (c : compiled) : plan =
    let n = c.n in
    let lx = Array.make c.l_colptr.(n) 0.0 in
    let l =
      Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy c.l_colptr)
        ~rowind:(Array.copy c.l_rowind) ~values:lx
    in
    { c; lx; nzcount = Array.make n 0; x = Array.make n 0.0; l }

  (* Numeric phase: identical arithmetic to [Eigen.factor] but with zero
     symbolic work — no transpose, no etree traversals, no pattern stacks:
     the reach function and matrix transpose are gone from the numeric
     code, exactly as §4.2 describes. *)
  let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
    let c = p.c in
    let n = c.n in
    let av = a_lower.Csc.values in
    let lp = c.l_colptr in
    let li = c.l_rowind in
    let lx = p.lx in
    let nzcount = p.nzcount in
    let x = p.x in
    (* The accumulator is all-zero after a completed run, but a prior run
       aborted by [Not_positive_definite] leaves it dirty; the fills make
       the plan reusable after any outcome, allocation-free. *)
    Array.fill nzcount 0 n 0;
    Array.fill x 0 n 0.0;
    for k = 0 to n - 1 do
      (* Gather column k of the upper triangle through the precomputed map. *)
      let d = ref 0.0 in
      for p = c.up_colptr.(k) to c.up_colptr.(k + 1) - 1 do
        let i = c.up_rowind.(p) in
        if i = k then d := av.(c.up_map.(p))
        else if i < k then x.(i) <- av.(c.up_map.(p))
      done;
      for t = c.rp_ptr.(k) to c.rp_ptr.(k + 1) - 1 do
        let j = c.rp_ind.(t) in
        let lkj = x.(j) /. lx.(lp.(j)) in
        x.(j) <- 0.0;
        for p = lp.(j) + 1 to lp.(j) + nzcount.(j) - 1 do
          x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. lkj)
        done;
        d := !d -. (lkj *. lkj);
        let p = lp.(j) + nzcount.(j) in
        lx.(p) <- lkj;
        nzcount.(j) <- nzcount.(j) + 1
      done;
      if !d <= 0.0 then raise (Not_positive_definite k);
      lx.(lp.(k)) <- sqrt !d;
      nzcount.(k) <- 1
    done;
    if Sympiler_prof.Prof.enabled () then begin
      let k = Sympiler_prof.Prof.cell () in
      k.Sympiler_prof.Prof.flops <-
        k.Sympiler_prof.Prof.flops + int_of_float c.flops;
      k.Sympiler_prof.Prof.nnz_touched <-
        k.Sympiler_prof.Prof.nnz_touched + lp.(n)
    end

  (* Spanned entry point: single-bool no-op when tracing is off; the [try]
     keeps the span stack balanced across [Not_positive_definite]. *)
  let factor_ip (p : plan) (a_lower : Csc.t) : unit =
    Sympiler_trace.Trace.begin_span "factor_ip.cholesky_simplicial";
    (try factor_ip_body p a_lower
     with e ->
       Sympiler_trace.Trace.end_span ();
       raise e);
    Sympiler_trace.Trace.end_span ()

  (* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
  let factor (c : compiled) (a_lower : Csc.t) : Csc.t =
    let p = make_plan c in
    factor_ip p a_lower;
    p.l
end

(* Dense-oracle-friendly wrapper: factor with the Eigen baseline. *)
let factor_simple (a_lower : Csc.t) : Csc.t =
  Eigen.factor (Eigen.analyze a_lower) a_lower

(* Solve A x = b given the factor L (forward then backward substitution). *)
let solve_with_factor (l : Csc.t) (b : float array) : float array =
  let x = Array.copy b in
  Trisolve_ref.naive_ip l x;
  Trisolve_ref.transpose_ip l x;
  x
