open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_prof

(* Sympiler's triangular-solve executors (the code of Figure 1e): all
   symbolic information — reach-set, supernodes, the supernode sequence the
   solve iterates over — is computed once at "compile time" and baked into
   a [compiled] value whose numeric routines contain no symbolic work.

   Three variants mirror the stacked bars of Figure 6:
   - [solve_vs_block]: VS-Block only — all supernodes processed with dense
     block kernels, no pruning.
   - [solve_vs_vi]: VS-Block + VI-Prune — only supernodes intersecting the
     reach-set are processed.
   - [solve_full]: + enabled low-level transformations — width-1 supernodes
     peeled into a scalar fast path and narrow blocks dispatched to
     specialized unrolled kernels. *)

type compiled = {
  l : Csc.t;
  reach : int array; (* topological reach-set (VI-Prune inspection set) *)
  sn : Supernodes.t; (* block-set (VS-Block inspection set) *)
  sn_sequence : int array; (* supernodes hit by the reach-set, ascending *)
  all_sn : int array; (* every supernode, ascending (for VS-Block only) *)
  max_below : int; (* max below-block height, sizes the scratch buffer *)
  tmp : float array;
  flops : float; (* useful numeric flops of the pruned solve *)
  columnwise : bool;
      (* compile-time decision: process the reach-set column by column
         (scalar code) instead of block by block — chosen when supernodes
         are too narrow or would waste too much work on unreached columns *)
  decisions : Sympiler_trace.Trace.decision list;
      (* decision log: VS-Block and VI-Prune, with measured quantities *)
}

(* VS-Block is worthwhile only when participating supernodes are large
   enough; the paper hand-tunes this threshold (set to 160 there for the
   average *supernode work size*; our executor uses average width — the
   ablation bench explores this). When the average width of reached
   supernodes is below [vs_block_threshold], [compile] records supernodes of
   width 1 everywhere, making the block variants degenerate to column code,
   exactly as Sympiler skips VS-Block for matrices 3,4,5,7. *)
let compile ?(vs_block_threshold = 1.6) ?(waste_threshold = 0.1) ?max_width
    (l : Csc.t) (b : Vector.sparse) : compiled =
  let reach = Dep_graph.reach l b.Vector.indices in
  (* Ascending column order is also a valid dependence order for forward
     substitution and gives the numeric loop sequential memory access; the
     compiler sorts the inspection set once, for free at run time. *)
  Array.sort compare reach;
  let sn = Supernodes.detect_exact ?max_width l in
  let col_flops j = float_of_int ((2 * Csc.col_nnz l j) - 1) in
  (* Work accounting, all at compile time: block processing runs every
     column of a hit supernode, useful or not. *)
  let hit0 = Array.make (Supernodes.nsuper sn) false in
  Array.iter (fun j -> hit0.(sn.Supernodes.col_to_sn.(j)) <- true) reach;
  let useful = Array.fold_left (fun acc j -> acc +. col_flops j) 0.0 reach in
  let block_work = ref 0.0 in
  let reached_w = ref 0 and reached_n = ref 0 in
  Array.iteri
    (fun s h ->
      if h then begin
        reached_w := !reached_w + Supernodes.width sn s;
        incr reached_n;
        for j = sn.Supernodes.sn_ptr.(s) to sn.Supernodes.sn_ptr.(s + 1) - 1 do
          block_work := !block_work +. col_flops j
        done
      end)
    hit0;
  let avg_reached_width =
    if !reached_n = 0 then 0.0
    else float_of_int !reached_w /. float_of_int !reached_n
  in
  let waste = (!block_work -. useful) /. Float.max useful 1.0 in
  let columnwise =
    avg_reached_width < vs_block_threshold || waste > waste_threshold
  in
  let sn = if columnwise then Supernodes.detect_exact ~max_width:1 l else sn in
  let hit = Array.make (Supernodes.nsuper sn) false in
  Array.iter (fun j -> hit.(sn.Supernodes.col_to_sn.(j)) <- true) reach;
  (* Supernodes hit by the reach-set, ascending: ascending column order is
     always a valid dependence order for forward substitution. *)
  let sn_sequence =
    let acc = ref [] in
    for s = Supernodes.nsuper sn - 1 downto 0 do
      if hit.(s) then acc := s :: !acc
    done;
    Array.of_list !acc
  in
  let all_sn = Array.init (Supernodes.nsuper sn) (fun s -> s) in
  let max_below = ref 0 in
  for s = 0 to Supernodes.nsuper sn - 1 do
    let c0 = sn.Supernodes.sn_ptr.(s) in
    let w = Supernodes.width sn s in
    (* Clamp at 0: a structurally empty column (no stored diagonal) makes
       [col_nnz - w] negative; the scratch size must stay the maximum of
       the genuine below-block heights, never a negative artifact. *)
    max_below := max !max_below (max 0 (Csc.col_nnz l c0 - w))
  done;
  if Prof.enabled () then begin
    (* VI-Prune inspection removed the columns outside the reach-set. *)
    let c = Prof.cell () in
    c.Prof.iters_pruned <-
      c.Prof.iters_pruned + (l.Csc.ncols - Array.length reach)
  end;
  (* Decision log: what the inspectors measured and which way each
     transformation went — recorded on the handle for explain reports and
     into the trace as instant events. *)
  let open Sympiler_trace in
  let d_vs =
    {
      Trace.pass = "vs-block";
      fired = not columnwise;
      metric = "avg_reached_supernode_width";
      value = avg_reached_width;
      threshold = vs_block_threshold;
    }
  in
  let d_vi =
    {
      Trace.pass = "vi-prune";
      fired = true;
      metric = "pruned_iteration_ratio";
      value =
        (if l.Csc.ncols = 0 then 0.0
         else
           1.0
           -. (float_of_int (Array.length reach) /. float_of_int l.Csc.ncols));
      threshold = 0.0;
    }
  in
  Trace.decision d_vi;
  Trace.decision d_vs;
  {
    l;
    reach;
    sn;
    sn_sequence;
    all_sn;
    max_below = !max_below;
    (* Exact size: [max_below] is clamped non-negative above, and every
       block path bounds its scratch use by the per-supernode below height,
       itself <= max_below — so the old [max 1] guard (which masked the
       possibility of a negative size) is no longer needed; a 0-length
       scratch is legal for patterns with no below-blocks at all. *)
    tmp = Array.make !max_below 0.0;
    flops = Trisolve_ref.flops l reach;
    columnwise;
    decisions = [ d_vi; d_vs ];
  }

(* Process one supernode with generic block kernels. *)
let process_supernode_generic c x s =
  let l = c.l and sn = c.sn in
  let c0 = sn.Supernodes.sn_ptr.(s) and c1 = sn.Supernodes.sn_ptr.(s + 1) in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  let nb = lp.(c0 + 1) - lp.(c0) - (c1 - c0) in
  Dense_blas.diag_solve_generic lp lx ~c0 ~c1 x;
  if nb > 0 then begin
    let tmp = c.tmp in
    Array.fill tmp 0 nb 0.0;
    Dense_blas.below_gemv_generic lp lx ~c0 ~c1 ~nb x tmp;
    let below_start = lp.(c0) + (c1 - c0) in
    for t = 0 to nb - 1 do
      x.(li.(below_start + t)) <- x.(li.(below_start + t)) -. tmp.(t)
    done
  end

(* Process one supernode with low-level transformations applied: peeled
   width-1 path and width-specialized unrolled GEMV. *)
let process_supernode_specialized c x s =
  let l = c.l and sn = c.sn in
  let c0 = sn.Supernodes.sn_ptr.(s) and c1 = sn.Supernodes.sn_ptr.(s + 1) in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
  if c1 - c0 = 1 then begin
    (* Peeled single-column supernode: plain scalar column update. *)
    let xj = x.(c0) /. lx.(lp.(c0)) in
    x.(c0) <- xj;
    for p = lp.(c0) + 1 to lp.(c0 + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  end
  else begin
    let nb = lp.(c0 + 1) - lp.(c0) - (c1 - c0) in
    Dense_blas.diag_solve_generic lp lx ~c0 ~c1 x;
    if nb > 0 then begin
      let tmp = c.tmp in
      Array.fill tmp 0 nb 0.0;
      Dense_blas.below_gemv_specialized lp lx ~c0 ~c1 ~nb x tmp;
      let below_start = lp.(c0) + (c1 - c0) in
      for t = 0 to nb - 1 do
        x.(li.(below_start + t)) <- x.(li.(below_start + t)) -. tmp.(t)
      done
    end
  end

(* Useful work of the pruned solve, as compile-time closed forms: the
   recorded flop count is [c.flops] (what every Figure 6 variant is
   normalized by) and nnz touched follows from flops = sum(2*nnz_j - 1)
   over the reach-set. Recording is a few integer adds per *solve*, not per
   iteration, and only when profiling is enabled. *)
let record_solve c =
  if Prof.enabled () then begin
    let k = Prof.cell () in
    let fl = int_of_float c.flops in
    k.Prof.flops <- k.Prof.flops + fl;
    k.Prof.nnz_touched <- k.Prof.nnz_touched + ((fl + Array.length c.reach) / 2)
  end

(* VS-Block only: every supernode, generic kernels. Plain [for] loops
   everywhere below: an [Array.iter] over a partial application would
   allocate a closure per solve, breaking the plans' zero-allocation
   steady state. *)
let solve_vs_block_ip c (x : float array) =
  let seq = c.all_sn in
  for i = 0 to Array.length seq - 1 do
    process_supernode_generic c x seq.(i)
  done;
  record_solve c

(* VS-Block + VI-Prune: only supernodes reached from the RHS pattern. *)
let solve_vs_vi_ip c (x : float array) =
  let seq = c.sn_sequence in
  for i = 0 to Array.length seq - 1 do
    process_supernode_generic c x seq.(i)
  done;
  record_solve c

(* VS-Block + VI-Prune + low-level transformations (the Figure 1e code).
   When compilation decided on column granularity, the loop is the flat
   decoupled code of Figure 1d over the reach-set (no supernode dispatch),
   which peeling/specialization reduce to in that regime. *)
let solve_full_ip c (x : float array) =
  if c.columnwise then begin
    let l = c.l in
    let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
    let reach = c.reach in
    for px = 0 to Array.length reach - 1 do
      let j = reach.(px) in
      let xj = x.(j) /. lx.(lp.(j)) in
      x.(j) <- xj;
      for p = lp.(j) + 1 to lp.(j + 1) - 1 do
        x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
      done
    done;
    record_solve c
  end
  else begin
    let seq = c.sn_sequence in
    for i = 0 to Array.length seq - 1 do
      process_supernode_specialized c x seq.(i)
    done;
    record_solve c
  end

let run ip c (b : Vector.sparse) =
  let x = Vector.sparse_to_dense b in
  ip c x;
  x

let solve_vs_block c b = run solve_vs_block_ip c b
let solve_vs_vi c b = run solve_vs_vi_ip c b
let solve_full c b = run solve_full_ip c b

(* ------------------------------- Plans ------------------------------- *)

(* A plan wraps a compiled solve with a plan-owned dense solution buffer,
   making repeated numeric solves allocation-free: [solve_ip] scatters the
   RHS into the buffer, runs the full specialized solve in place, and
   returns the buffer itself (overwritten by the next call). The compiled
   value already owns the block scratch [tmp]; the plan adds the only other
   per-solve array the functional wrappers used to allocate. *)
type plan = { c : compiled; x : float array }

let make_plan (c : compiled) : plan =
  { c; x = Array.make c.l.Csc.ncols 0.0 }

(* Scatter b over a zeroed buffer. The previous solution's nonzeros are not
   tracked, so the reset is a full O(n) fill — branch-free, allocation-free,
   and cheap next to the solve itself. *)
let load_rhs (p : plan) (b : Vector.sparse) =
  if b.Vector.n <> Array.length p.x then
    invalid_arg "Trisolve_sympiler.solve_ip: RHS dimension mismatch";
  Array.fill p.x 0 (Array.length p.x) 0.0;
  let idx = b.Vector.indices and v = b.Vector.values in
  for k = 0 to Array.length idx - 1 do
    p.x.(idx.(k)) <- v.(k)
  done

let solve_ip (p : plan) (b : Vector.sparse) : float array =
  load_rhs p b;
  Sympiler_trace.Trace.begin_span "solve_ip.trisolve";
  solve_full_ip p.c p.x;
  Sympiler_trace.Trace.end_span ();
  p.x
