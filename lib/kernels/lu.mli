open Sympiler_sparse

(** Sparse LU factorization (left-looking Gilbert-Peierls, no pivoting):
    [A = L U] with unit-diagonal L — the §3.3 extension whose symbolic
    needs are precisely the dependence-graph reach machinery. Intended for
    matrices that are numerically safe without pivoting (diagonally
    dominant or SPD). *)

exception Zero_pivot of int

type factors = {
  l : Csc.t;  (** unit lower triangular; unit diagonal stored first *)
  u : Csc.t;  (** upper triangular; diagonal stored last per column *)
}

(** Decoupled variant: all column patterns are computed once by a symbolic
    simulation of the factorization; the numeric phase runs no DFS. *)
module Sympiler : sig
  type compiled = {
    n : int;
    l_colptr : int array;
    l_rowind : int array;
    u_colptr : int array;
    u_rowind : int array;
    flops : float;
  }

  val compile : Csc.t -> compiled
  (** Symbolic LU: per-column reach sets over the growing DG_L. *)

  val factor : compiled -> Csc.t -> factors
  (** Numeric-only factorization for any matrix sharing the compiled
      pattern. Allocates fresh factors per call; use a {!plan} for
      allocation-free steady state. *)

  (** {2 Plans} *)

  type plan = {
    c : compiled;
    lx : float array;  (** values of L, plan-owned *)
    ux : float array;  (** values of U, plan-owned *)
    x : float array;  (** dense scatter column *)
    f : factors;  (** factor views over the plan's storage *)
  }

  val make_plan : compiled -> plan

  val factor_ip : plan -> Csc.t -> unit
  (** Numeric factorization into the plan's storage ([plan.f] afterwards);
      zero allocation in steady state, reusable even after {!Zero_pivot}. *)
end

(** Library-style Gilbert-Peierls: the per-column symbolic DFS runs inside
    the numeric phase, with dynamically grown factors. *)
module Ref : sig
  val factor : Csc.t -> factors
end

val solve : factors -> float array -> float array
(** [A x = b] via forward (unit L) then backward (U) substitution. *)
