open Sympiler_sparse

(** [A = L D L^T] factorization (unit-diagonal L, diagonal D): handles
    symmetric {e indefinite} but strongly regular matrices that plain
    Cholesky rejects — one of the "other matrix methods" of §3.3 whose
    symbolic analysis is exactly the Cholesky inspectors'. Decoupled:
    {!compile} precomputes prune-sets, L's pattern, and the transpose
    gather map; {!factor} is numeric-only up-looking. *)

exception Zero_pivot of int

type compiled = {
  n : int;
  rp_ptr : int array;  (** prune-set offsets, length [n+1] *)
  rp_ind : int array;  (** packed prune-sets, ascending per row *)
  l_colptr : int array;
  l_rowind : int array;
  up_colptr : int array;
  up_rowind : int array;
  up_map : int array;
}

type factors = {
  l : Csc.t;  (** unit lower triangular, unit diagonal stored *)
  d : float array;  (** the diagonal of D (may contain negative pivots) *)
}

val compile : Csc.t -> compiled
(** Symbolic phase over the lower-triangular part of A. *)

val factor : compiled -> Csc.t -> factors
(** Numeric phase; raises {!Zero_pivot} on a structurally unlucky zero.
    Allocates fresh factors per call; use a {!plan} for allocation-free
    steady state. *)

(** {2 Plans} *)

type plan = {
  c : compiled;
  lx : float array;  (** values of L, plan-owned *)
  nzcount : int array;  (** per-column fill cursor *)
  y : float array;  (** sparse accumulator *)
  f : factors;  (** factor view over the plan's storage *)
}

val make_plan : compiled -> plan

val factor_ip : plan -> Csc.t -> unit
(** Numeric factorization into the plan's storage ([plan.f] afterwards);
    zero allocation in steady state, reusable even after {!Zero_pivot}. *)

val factorize : Csc.t -> factors
(** [compile] + [factor] in one call. *)

val solve : factors -> float array -> float array
(** [A x = b]: forward solve, diagonal scaling, backward solve. *)
