open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_prof

(* Left-looking column Cholesky — the paper's Figure 4 pseudo-code as a
   native decoupled executor. Column j is built by gathering A(:,j) into a
   dense accumulator f, subtracting the contributions of every column r in
   the prune-set (the row pattern of L, VI-Prune's inspection set), then
   dividing by the square root of the diagonal.

   All symbolic quantities are baked in at compile time, including
   [row_pos]: the storage position of entry L(j, r) inside column r — what
   lets the update loop start exactly at the diagonal-row element with no
   searching. This is the same kernel [Build.lower_cholesky] lowers to the
   AST; here it runs at native speed and serves as an independent executor
   cross-checked against the AST interpreter and the up-looking variant. *)

exception Not_positive_definite of int

type compiled = {
  n : int;
  l_colptr : int array;
  l_rowind : int array;
  row_ptr : int array; (* flattened prune-sets *)
  row_set : int array; (* columns r in the prune-set of each j *)
  row_pos : int array; (* position of L(j, r) within column r *)
  flops : float;
}

let compile ?fill (a_lower : Csc.t) : compiled =
  let fill =
    match fill with Some f -> f | None -> Fill_pattern.analyze a_lower
  in
  let n = fill.Fill_pattern.n in
  let lp = fill.Fill_pattern.l_pattern.Csc.colptr in
  (* Flatten the packed prune-set store once at compile time: the numeric
     phase then reads plain int arrays only. *)
  let row_ptr = Array.copy (Fill_pattern.row_ptr fill) in
  let total = row_ptr.(n) in
  let row_set = Array.make (max 1 total) 0 in
  let row_pos = Array.make (max 1 total) 0 in
  let fillcount = Array.make n 0 in
  for j = 0 to n - 1 do
    let t = ref 0 in
    Fill_pattern.iter_row_pattern fill j (fun r ->
        fillcount.(r) <- fillcount.(r) + 1;
        row_set.(row_ptr.(j) + !t) <- r;
        row_pos.(row_ptr.(j) + !t) <- lp.(r) + fillcount.(r);
        incr t)
  done;
  {
    n;
    l_colptr = lp;
    l_rowind = fill.Fill_pattern.l_pattern.Csc.rowind;
    row_ptr;
    row_set;
    row_pos;
    flops = Fill_pattern.flops fill;
  }

let factor (c : compiled) (a_lower : Csc.t) : Csc.t =
  let n = c.n in
  let lp = c.l_colptr and li = c.l_rowind in
  let lx = Array.make lp.(n) 0.0 in
  let f = Array.make n 0.0 in
  for j = 0 to n - 1 do
    (* f = A(:, j), lower part *)
    for p = a_lower.Csc.colptr.(j) to a_lower.Csc.colptr.(j + 1) - 1 do
      f.(a_lower.Csc.rowind.(p)) <- a_lower.Csc.values.(p)
    done;
    (* update phase over the prune-set: f -= L(j:n, r) * L(j, r) *)
    for q = c.row_ptr.(j) to c.row_ptr.(j + 1) - 1 do
      let start = c.row_pos.(q) in
      let ljr = lx.(start) in
      let r = c.row_set.(q) in
      for p = start to lp.(r + 1) - 1 do
        f.(li.(p)) <- f.(li.(p)) -. (lx.(p) *. ljr)
      done
    done;
    (* column factorization: diagonal then off-diagonals *)
    let d = f.(j) in
    if d <= 0.0 then raise (Not_positive_definite j);
    let djj = sqrt d in
    lx.(lp.(j)) <- djj;
    f.(j) <- 0.0;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      let i = li.(p) in
      lx.(p) <- f.(i) /. djj;
      f.(i) <- 0.0
    done
  done;
  if Prof.enabled () then begin
    let k = Prof.cell () in
    k.Prof.flops <- k.Prof.flops + int_of_float c.flops;
    k.Prof.nnz_touched <- k.Prof.nnz_touched + lp.(n)
  end;
  Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy lp) ~rowind:(Array.copy li)
    ~values:lx

let factorize (a_lower : Csc.t) : Csc.t = factor (compile a_lower) a_lower
