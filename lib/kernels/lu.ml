open Sympiler_sparse
open Sympiler_prof

(* Sparse LU factorization, left-looking Gilbert-Peierls, without pivoting
   (static pattern — the §3.3 extension enabled by Sympiler's dependency-
   graph inspectors). A = L U with unit-diagonal L. Intended for matrices
   that are numerically safe without pivoting (diagonally dominant or SPD).

   Two variants, as for Cholesky:
   - [Ref]: the library scheme — each column's pattern is discovered at
     numeric time with a DFS over the partial dependence graph DG_L
     (Gilbert & Peierls' original coupling of symbolic and numeric work).
   - [Sympiler]: all column patterns are computed once symbolically at
     compile time; the numeric phase is pure arithmetic over baked-in
     patterns. *)

exception Zero_pivot of int

type factors = { l : Csc.t; (* unit lower triangular, diagonal stored *)
                 u : Csc.t (* upper triangular *) }

module Sympiler = struct
  type compiled = {
    n : int;
    (* per column j: reach pattern split into the U part (rows < j,
       ascending = valid dependence order) and L part (rows > j, ascending) *)
    l_colptr : int array;
    l_rowind : int array;
    u_colptr : int array;
    u_rowind : int array;
    flops : float;
  }

  (* Symbolic LU: simulate the factorization on patterns only. Column j's
     pattern is Reach_{DG_L}(pattern A(:,j)) over the partial L. *)
  let compile (a : Csc.t) : compiled =
    let n = a.Csc.ncols in
    (* Patterns of L columns (below diagonal), built progressively. *)
    let l_cols : int array array = Array.make n [||] in
    let u_counts = Array.make (n + 1) 0 in
    let l_counts = Array.make (n + 1) 0 in
    let mark = Array.make n (-1) in
    let u_patterns = Array.make n [||] in
    let flops = ref 0.0 in
    for j = 0 to n - 1 do
      (* DFS over DG of L(0:j-1) from pattern of A(:,j). *)
      let found = ref [] in
      let rec dfs v =
        if mark.(v) <> j then begin
          mark.(v) <- j;
          if v < j then
            Array.iter (fun w -> if w <> v then dfs w) l_cols.(v);
          found := v :: !found
        end
      in
      Csc.iter_col a j (fun i _ -> dfs i);
      let pat = Array.of_list !found in
      Array.sort compare pat;
      let upart = Array.of_seq (Seq.filter (fun i -> i < j) (Array.to_seq pat)) in
      let lpart = Array.of_seq (Seq.filter (fun i -> i > j) (Array.to_seq pat)) in
      u_patterns.(j) <- upart;
      l_cols.(j) <- lpart;
      u_counts.(j) <- Array.length upart + 1 (* + diagonal U(j,j) *);
      l_counts.(j) <- Array.length lpart + 1 (* + unit diagonal *);
      Array.iter
        (fun k -> flops := !flops +. (2.0 *. float_of_int (Array.length l_cols.(k))))
        upart;
      flops := !flops +. float_of_int (Array.length lpart)
    done;
    let u_colptr = Array.make (n + 1) 0 in
    Array.blit u_counts 0 u_colptr 0 n;
    let unnz = Utils.cumsum u_colptr in
    let l_colptr = Array.make (n + 1) 0 in
    Array.blit l_counts 0 l_colptr 0 n;
    let lnnz = Utils.cumsum l_colptr in
    let u_rowind = Array.make unnz 0 in
    let l_rowind = Array.make lnnz 0 in
    for j = 0 to n - 1 do
      let up = u_colptr.(j) in
      Array.iteri (fun t i -> u_rowind.(up + t) <- i) u_patterns.(j);
      u_rowind.(up + Array.length u_patterns.(j)) <- j;
      let lp = l_colptr.(j) in
      l_rowind.(lp) <- j;
      Array.iteri (fun t i -> l_rowind.(lp + 1 + t) <- i) l_cols.(j)
    done;
    { n; l_colptr; l_rowind; u_colptr; u_rowind; flops = !flops }

  (* A plan owns both factors' values and the dense scatter column, so
     repeated [factor_ip] calls allocate nothing. *)
  type plan = {
    c : compiled;
    lx : float array; (* values of L, plan-owned *)
    ux : float array; (* values of U, plan-owned *)
    x : float array; (* dense scatter column (all-zero between calls) *)
    f : factors; (* factor views over [lx] / [ux] *)
  }

  let make_plan (c : compiled) : plan =
    let n = c.n in
    let lx = Array.make c.l_colptr.(n) 0.0 in
    let ux = Array.make c.u_colptr.(n) 0.0 in
    let l =
      Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy c.l_colptr)
        ~rowind:(Array.copy c.l_rowind) ~values:lx
    in
    let u =
      Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy c.u_colptr)
        ~rowind:(Array.copy c.u_rowind) ~values:ux
    in
    { c; lx; ux; x = Array.make n 0.0; f = { l; u } }

  (* Numeric phase: no DFS, no pattern work. *)
  let factor_ip_body (p : plan) (a : Csc.t) : unit =
    let c = p.c in
    let n = c.n in
    let lx = p.lx in
    let ux = p.ux in
    let x = p.x in
    (* A prior run aborted by [Zero_pivot] leaves the scatter column dirty;
       the fill makes the plan reusable after any outcome. *)
    Array.fill x 0 n 0.0;
    for j = 0 to n - 1 do
      for q = a.Csc.colptr.(j) to a.Csc.colptr.(j + 1) - 1 do
        x.(a.Csc.rowind.(q)) <- a.Csc.values.(q)
      done;
      (* Eliminate along the U pattern in ascending (dependence) order. *)
      let ulo = c.u_colptr.(j) and uhi = c.u_colptr.(j + 1) - 1 in
      for p = ulo to uhi - 1 do
        let k = c.u_rowind.(p) in
        let xk = x.(k) in
        ux.(p) <- xk;
        x.(k) <- 0.0;
        if xk <> 0.0 then
          (* x -= xk * L(:,k) below diagonal *)
          for q = c.l_colptr.(k) + 1 to c.l_colptr.(k + 1) - 1 do
            let i = c.l_rowind.(q) in
            x.(i) <- x.(i) -. (lx.(q) *. xk)
          done
      done;
      let ujj = x.(j) in
      if ujj = 0.0 then raise (Zero_pivot j);
      ux.(uhi) <- ujj;
      x.(j) <- 0.0;
      let llo = c.l_colptr.(j) in
      lx.(llo) <- 1.0;
      for q = llo + 1 to c.l_colptr.(j + 1) - 1 do
        let i = c.l_rowind.(q) in
        lx.(q) <- x.(i) /. ujj;
        x.(i) <- 0.0
      done
    done;
    if Prof.enabled () then begin
      let k = Prof.cell () in
      k.Prof.flops <- k.Prof.flops + int_of_float c.flops;
      k.Prof.nnz_touched <-
        k.Prof.nnz_touched + c.l_colptr.(n) + c.u_colptr.(n)
    end

  (* Spanned entry point: single-bool no-op when tracing is off; the [try]
     keeps the span stack balanced across [Zero_pivot]. *)
  let factor_ip (p : plan) (a : Csc.t) : unit =
    Sympiler_trace.Trace.begin_span "factor_ip.lu";
    (try factor_ip_body p a
     with e ->
       Sympiler_trace.Trace.end_span ();
       raise e);
    Sympiler_trace.Trace.end_span ()

  (* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
  let factor (c : compiled) (a : Csc.t) : factors =
    let p = make_plan c in
    factor_ip p a;
    p.f
end

module Ref = struct
  (* Library-style Gilbert-Peierls: symbolic DFS per column at numeric
     time, dynamic growth of L and U. *)
  let factor (a : Csc.t) : factors =
    let n = a.Csc.ncols in
    let ltr = Triplet.create ~nrows:n ~ncols:n () in
    let utr = Triplet.create ~nrows:n ~ncols:n () in
    (* Partial L column patterns/values for the DFS and updates. *)
    let l_cols : (int * float) list array = Array.make n [] in
    let mark = Array.make n (-1) in
    let x = Array.make n 0.0 in
    for j = 0 to n - 1 do
      let found = ref [] in
      let rec dfs v =
        if mark.(v) <> j then begin
          mark.(v) <- j;
          if v < j then List.iter (fun (w, _) -> dfs w) l_cols.(v);
          found := v :: !found
        end
      in
      Csc.iter_col a j (fun i v ->
          x.(i) <- v;
          dfs i);
      let pat = List.sort compare !found in
      List.iter
        (fun k ->
          if k < j then begin
            let xk = x.(k) in
            if xk <> 0.0 then
              List.iter
                (fun (i, lik) -> x.(i) <- x.(i) -. (lik *. xk))
                l_cols.(k)
          end)
        pat;
      let ujj = x.(j) in
      if ujj = 0.0 then raise (Zero_pivot j);
      List.iter
        (fun k ->
          if k < j then begin
            utr |> fun t -> Triplet.add t k j x.(k);
            x.(k) <- 0.0
          end)
        pat;
      Triplet.add utr j j ujj;
      x.(j) <- 0.0;
      Triplet.add ltr j j 1.0;
      let below = ref [] in
      List.iter
        (fun i ->
          if i > j then begin
            let lij = x.(i) /. ujj in
            Triplet.add ltr i j lij;
            below := (i, lij) :: !below;
            x.(i) <- 0.0
          end)
        pat;
      l_cols.(j) <- List.rev !below
    done;
    { l = Csc.of_triplet ltr; u = Csc.of_triplet utr }
end

(* Solve A x = b from LU factors: forward (unit L) then backward (U). *)
let solve (f : factors) (b : float array) : float array =
  let n = f.l.Csc.ncols in
  let x = Array.copy b in
  (* L has explicit unit diagonal first in each column. *)
  for j = 0 to n - 1 do
    let xj = x.(j) in
    for p = f.l.Csc.colptr.(j) + 1 to f.l.Csc.colptr.(j + 1) - 1 do
      x.(f.l.Csc.rowind.(p)) <- x.(f.l.Csc.rowind.(p)) -. (f.l.Csc.values.(p) *. xj)
    done
  done;
  (* U columns have the diagonal last. *)
  for j = n - 1 downto 0 do
    let hi = f.u.Csc.colptr.(j + 1) - 1 in
    let xj = x.(j) /. f.u.Csc.values.(hi) in
    x.(j) <- xj;
    for p = f.u.Csc.colptr.(j) to hi - 1 do
      x.(f.u.Csc.rowind.(p)) <- x.(f.u.Csc.rowind.(p)) -. (f.u.Csc.values.(p) *. xj)
    done
  done;
  x
