open Sympiler_sparse
open Sympiler_symbolic

(* LDL^T factorization: A = L D L^T with unit-diagonal L and diagonal D.
   Handles symmetric *indefinite* (but factorizable without pivoting)
   matrices that plain Cholesky rejects — one of the "other matrix methods"
   of §3.3 whose symbolic analysis (etree + row patterns) is exactly the
   Cholesky inspector's. The decoupled numeric phase below is the
   up-looking algorithm of Davis's LDL package driven entirely by
   precomputed prune-sets. *)

exception Zero_pivot of int

type compiled = {
  n : int;
  rp_ptr : int array; (* prune-set offsets, length n+1 *)
  rp_ind : int array; (* packed prune-sets (ascending per row) *)
  l_colptr : int array;
  l_rowind : int array;
  up_colptr : int array;
  up_rowind : int array;
  up_map : int array; (* transpose gather map, computed symbolically *)
}

type factors = {
  l : Csc.t; (* unit lower triangular; unit diagonal stored explicitly *)
  d : float array;
}

(* Symbolic phase: identical inspection sets to Cholesky's. The packed
   prune-set store is flattened into plain int arrays here, once, so the
   numeric phase reads them allocation-free (int32 Bigarray reads box
   without flambda). *)
let compile (a_lower : Csc.t) : compiled =
  let fill = Fill_pattern.analyze a_lower in
  let up_colptr, up_rowind, up_map = Csc.transpose_map a_lower in
  let store = Fill_pattern.row_store fill in
  {
    n = fill.Fill_pattern.n;
    rp_ptr = Bigstore.ptr store;
    rp_ind = Bigstore.flatten store;
    l_colptr = fill.Fill_pattern.l_pattern.Csc.colptr;
    l_rowind = fill.Fill_pattern.l_pattern.Csc.rowind;
    up_colptr;
    up_rowind;
    up_map;
  }

(* A plan owns the factor storage (shared with the [factors] view) and the
   numeric scratch, so repeated [factor_ip] calls allocate nothing. *)
type plan = {
  c : compiled;
  lx : float array; (* values of L, plan-owned *)
  nzcount : int array; (* per-column fill cursor *)
  y : float array; (* sparse accumulator (all-zero between calls) *)
  f : factors; (* factor view over [lx] and the plan's [d] *)
}

let make_plan (c : compiled) : plan =
  let n = c.n in
  let lx = Array.make c.l_colptr.(n) 0.0 in
  let d = Array.make n 0.0 in
  let l =
    Csc.create ~nrows:n ~ncols:n ~colptr:(Array.copy c.l_colptr)
      ~rowind:(Array.copy c.l_rowind) ~values:lx
  in
  { c; lx; nzcount = Array.make n 0; y = Array.make n 0.0; f = { l; d } }

(* Numeric phase: up-looking, no symbolic work. Row k solves
   L(0:k-1,0:k-1) D y = A(0:k-1,k) along the precomputed pattern. *)
let factor_ip_body (p : plan) (a_lower : Csc.t) : unit =
  let c = p.c in
  let n = c.n in
  let av = a_lower.Csc.values in
  let lp = c.l_colptr in
  let li = c.l_rowind in
  let lx = p.lx in
  let d = p.f.d in
  let nzcount = p.nzcount in
  let y = p.y in
  (* The accumulator is all-zero after a completed run, but a prior run
     aborted by [Zero_pivot] leaves it dirty; the fills make the plan
     reusable after any outcome, allocation-free. *)
  Array.fill nzcount 0 n 0;
  Array.fill y 0 n 0.0;
  for k = 0 to n - 1 do
    let dk = ref 0.0 in
    for p = c.up_colptr.(k) to c.up_colptr.(k + 1) - 1 do
      let i = c.up_rowind.(p) in
      if i = k then dk := av.(c.up_map.(p))
      else if i < k then y.(i) <- av.(c.up_map.(p))
    done;
    for t = c.rp_ptr.(k) to c.rp_ptr.(k + 1) - 1 do
      let j = c.rp_ind.(t) in
      let yj = y.(j) in
      y.(j) <- 0.0;
      let lkj = yj /. d.(j) in
      (* subtract L(:,j) * yj from the sparse accumulator *)
      for p = lp.(j) + 1 to lp.(j) + nzcount.(j) - 1 do
        y.(li.(p)) <- y.(li.(p)) -. (lx.(p) *. yj)
      done;
      dk := !dk -. (lkj *. yj);
      let p = lp.(j) + nzcount.(j) in
      lx.(p) <- lkj;
      nzcount.(j) <- nzcount.(j) + 1
    done;
    if !dk = 0.0 then raise (Zero_pivot k);
    d.(k) <- !dk;
    lx.(lp.(k)) <- 1.0;
    nzcount.(k) <- 1
  done

(* Spanned entry point: single-bool no-op when tracing is off; the [try]
   keeps the span stack balanced across [Zero_pivot]. *)
let factor_ip (p : plan) (a_lower : Csc.t) : unit =
  Sympiler_trace.Trace.begin_span "factor_ip.ldlt";
  (try factor_ip_body p a_lower
   with e ->
     Sympiler_trace.Trace.end_span ();
     raise e);
  Sympiler_trace.Trace.end_span ()

(* One-shot allocating wrapper (fresh plan = fresh factor arrays). *)
let factor (c : compiled) (a_lower : Csc.t) : factors =
  let p = make_plan c in
  factor_ip p a_lower;
  p.f

let factorize (a_lower : Csc.t) : factors = factor (compile a_lower) a_lower

(* Solve A x = b: forward (unit L), diagonal scale, backward (L^T). *)
let solve (f : factors) (b : float array) : float array =
  let n = Array.length f.d in
  let x = Array.copy b in
  let lp = f.l.Csc.colptr and li = f.l.Csc.rowind and lx = f.l.Csc.values in
  for j = 0 to n - 1 do
    let xj = x.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. xj)
    done
  done;
  for j = 0 to n - 1 do
    x.(j) <- x.(j) /. f.d.(j)
  done;
  for j = n - 1 downto 0 do
    let s = ref x.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      s := !s -. (lx.(p) *. x.(li.(p)))
    done;
    x.(j) <- !s
  done;
  x
