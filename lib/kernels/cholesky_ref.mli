open Sympiler_sparse
open Sympiler_symbolic

(** Non-supernodal (simplicial) sparse Cholesky [A = L L^T], input given as
    the lower-triangular part of A in CSC form. Two variants: the
    Eigen-like library baseline whose numeric phase still performs coupled
    symbolic work, and the fully decoupled Sympiler form. *)

exception Not_positive_definite of int
(** Raised at the offending column. *)

(** Eigen-style baseline: the symbolic phase ("analyzePattern") computes
    only the elimination tree and column counts; the numeric phase, like
    Eigen's SimplicialLLT, transposes A and recomputes every row pattern
    with etree up-traversals — the residual symbolic work §4.2 calls out. *)
module Eigen : sig
  type analysis = { n : int; parent : int array; l_colptr : int array }

  val analyze : Csc.t -> analysis
  (** Symbolic phase: etree + counts (storage allocation only). *)

  val factor : analysis -> Csc.t -> Csc.t
  (** Numeric phase (up-looking), including the transpose and the pattern
      up-traversals. *)
end

(** Decoupled Sympiler variant (the Cholesky VI-Prune baseline of
    Figure 7): prune-sets, the full pattern of L, and a transpose gather
    map are precomputed, so the numeric phase touches numbers only. *)
module Decoupled : sig
  type compiled = {
    n : int;
    rp_ptr : int array;  (** prune-set offsets, length [n+1] *)
    rp_ind : int array;  (** packed prune-sets, ascending per row *)
    l_colptr : int array;
    l_rowind : int array;
    up_colptr : int array;
    up_rowind : int array;
    up_map : int array;
    flops : float;
  }

  val compile : ?fill:Fill_pattern.t -> Csc.t -> compiled
  (** Compile-time symbolic factorization; pass [fill] to share an
      already-computed analysis. *)

  val factor : compiled -> Csc.t -> Csc.t
  (** Numeric-only factorization: identical arithmetic to [Eigen.factor]
      with zero symbolic work. Allocates a fresh factor per call; use a
      {!plan} for allocation-free steady state. *)

  (** {2 Plans} *)

  type plan = {
    c : compiled;
    lx : float array;  (** values of L, plan-owned *)
    nzcount : int array;  (** per-column fill cursor *)
    x : float array;  (** sparse accumulator *)
    l : Csc.t;  (** factor view sharing [lx]; refreshed by {!factor_ip} *)
  }

  val make_plan : compiled -> plan

  val factor_ip : plan -> Csc.t -> unit
  (** Numeric factorization into the plan's storage; zero allocation in
      steady state, reusable even after {!Not_positive_definite}. *)
end

val factor_simple : Csc.t -> Csc.t
(** One-shot convenience: [Eigen.analyze] + [Eigen.factor]. *)

val solve_with_factor : Csc.t -> float array -> float array
(** [A x = b] given the factor L: forward then backward substitution. *)
