open Sympiler_sparse

(* C emission for the "other matrix methods" of §3.3 (LDL^T, LU, IC0,
   ILU0): like the Cholesky/trisolve emitters, every index array the
   symbolic phase computed is baked into the source as a static table, so
   the emitted numeric phase contains no symbolic work at all — the
   static-index-array property the paper's §5 contrasts with
   inspector-executor libraries. Each function mirrors its OCaml
   [factor_ip_body] line by line; pivot failures return the failing
   index, success returns -1. *)

let emit_int_array buf name (a : int array) =
  Printf.bprintf buf "static const int %s[%d] = {" name
    (max 1 (Array.length a));
  if Array.length a = 0 then Buffer.add_string buf "0"
  else
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int v))
      a;
  Buffer.add_string buf "};\n"

let emit_header buf kernel n =
  Printf.bprintf buf
    "/* Sympiler-generated %s: numeric phase specialized to one sparsity\n\
    \   structure (n = %d); all index arrays are compile-time constants. */\n"
    kernel n;
  Printf.bprintf buf "#define N %d\n" n

let ldlt (c : Ldlt.compiled) : string =
  let buf = Buffer.create 4096 in
  emit_header buf "LDL^T factorization" c.Ldlt.n;
  (* The compiled kernel already carries the prune-sets in flattened
     ptr/ind form; emit them as-is. *)
  let rp_ptr = c.Ldlt.rp_ptr and rp_ind = c.Ldlt.rp_ind in
  emit_int_array buf "lp" c.Ldlt.l_colptr;
  emit_int_array buf "li" c.Ldlt.l_rowind;
  emit_int_array buf "up" c.Ldlt.up_colptr;
  emit_int_array buf "ui" c.Ldlt.up_rowind;
  emit_int_array buf "umap" c.Ldlt.up_map;
  emit_int_array buf "rp_ptr" rp_ptr;
  emit_int_array buf "rp_ind" rp_ind;
  Buffer.add_string buf
    {|static int nzcount[N > 0 ? N : 1];
static double y[N > 0 ? N : 1];
/* ax: values of lower(A); lx: values of L; d: the diagonal.
   Returns -1 on success, k on a zero pivot at column k. */
int ldlt_factor(const double *restrict ax, double *restrict lx,
                double *restrict d) {
  for (int i = 0; i < N; i++) { nzcount[i] = 0; y[i] = 0.0; }
  for (int k = 0; k < N; k++) {
    double dk = 0.0;
    for (int p = up[k]; p < up[k + 1]; p++) {
      int i = ui[p];
      if (i == k) dk = ax[umap[p]];
      else if (i < k) y[i] = ax[umap[p]];
    }
    for (int t = rp_ptr[k]; t < rp_ptr[k + 1]; t++) {
      int j = rp_ind[t];
      double yj = y[j];
      y[j] = 0.0;
      double lkj = yj / d[j];
      /* row indices within a column are distinct: the scatter is safe */
#pragma GCC ivdep
      for (int p = lp[j] + 1; p < lp[j] + nzcount[j]; p++)
        y[li[p]] -= lx[p] * yj;
      dk -= lkj * yj;
      lx[lp[j] + nzcount[j]] = lkj;
      nzcount[j]++;
    }
    if (dk == 0.0) return k;
    d[k] = dk;
    lx[lp[k]] = 1.0;
    nzcount[k] = 1;
  }
  return -1;
}
|};
  Buffer.contents buf

let lu (c : Lu.Sympiler.compiled) (a : Csc.t) : string =
  let buf = Buffer.create 4096 in
  emit_header buf "LU factorization (Gilbert-Peierls, static pattern)"
    c.Lu.Sympiler.n;
  emit_int_array buf "ap" a.Csc.colptr;
  emit_int_array buf "ai" a.Csc.rowind;
  emit_int_array buf "lp" c.Lu.Sympiler.l_colptr;
  emit_int_array buf "li" c.Lu.Sympiler.l_rowind;
  emit_int_array buf "up" c.Lu.Sympiler.u_colptr;
  emit_int_array buf "ui" c.Lu.Sympiler.u_rowind;
  Buffer.add_string buf
    {|static double x[N > 0 ? N : 1];
/* ax: values of A (CSC, the compiled pattern); lx/ux: values of L/U.
   Returns -1 on success, j on a zero pivot at column j. */
int lu_factor(const double *restrict ax, double *restrict lx,
              double *restrict ux) {
  for (int i = 0; i < N; i++) x[i] = 0.0;
  for (int j = 0; j < N; j++) {
    for (int q = ap[j]; q < ap[j + 1]; q++) x[ai[q]] = ax[q];
    int uhi = up[j + 1] - 1;
    for (int p = up[j]; p < uhi; p++) {
      int k = ui[p];
      double xk = x[k];
      ux[p] = xk;
      x[k] = 0.0;
      if (xk != 0.0)
        /* row indices within a column are distinct: the scatter is safe */
#pragma GCC ivdep
        for (int q = lp[k] + 1; q < lp[k + 1]; q++) x[li[q]] -= lx[q] * xk;
    }
    double ujj = x[j];
    if (ujj == 0.0) return j;
    ux[uhi] = ujj;
    x[j] = 0.0;
    lx[lp[j]] = 1.0;
#pragma GCC ivdep
    for (int q = lp[j] + 1; q < lp[j + 1]; q++) {
      lx[q] = x[li[q]] / ujj;
      x[li[q]] = 0.0;
    }
  }
  return -1;
}
|};
  Buffer.contents buf

let ic0 (c : Ic0.compiled) : string =
  let buf = Buffer.create 4096 in
  emit_header buf "incomplete Cholesky IC(0)" c.Ic0.n;
  emit_int_array buf "lp" c.Ic0.colptr;
  emit_int_array buf "li" c.Ic0.rowind;
  emit_int_array buf "rp" c.Ic0.row_ptr;
  emit_int_array buf "rc" c.Ic0.row_col;
  emit_int_array buf "rq" c.Ic0.row_pos;
  Buffer.add_string buf
    {|#include <math.h>
static int pos[N > 0 ? N : 1];
/* ax: values of lower(A); lx: values of the IC(0) factor (same pattern).
   Returns -1 on success, j when the pivot at column j is not positive. */
int ic0_factor(const double *restrict ax, double *restrict lx) {
#pragma GCC ivdep
  for (int q = 0; q < lp[N]; q++) lx[q] = ax[q];
  for (int i = 0; i < N; i++) pos[i] = -1;
  for (int j = 0; j < N; j++) {
    for (int p = lp[j]; p < lp[j + 1]; p++) pos[li[p]] = p;
    for (int q = rp[j]; q < rp[j + 1]; q++) {
      int r = rc[q];
      double ljr = lx[rq[q]];
      if (ljr != 0.0)
        /* pos[] positions within a column are distinct: the scatter is safe */
#pragma GCC ivdep
        for (int t = rq[q]; t < lp[r + 1]; t++)
          if (pos[li[t]] >= 0) lx[pos[li[t]]] -= lx[t] * ljr;
    }
    double dj = lx[lp[j]];
    if (dj <= 0.0) return j;
    double s = sqrt(dj);
    lx[lp[j]] = s;
#pragma GCC ivdep
    for (int p = lp[j] + 1; p < lp[j + 1]; p++) lx[p] /= s;
    for (int p = lp[j]; p < lp[j + 1]; p++) pos[li[p]] = -1;
  }
  return -1;
}
|};
  Buffer.contents buf

let ilu0 (c : Ilu0.compiled) : string =
  let buf = Buffer.create 4096 in
  emit_header buf "incomplete LU ILU(0)" c.Ilu0.n;
  emit_int_array buf "rp" c.Ilu0.rowptr;
  emit_int_array buf "ci" c.Ilu0.colind;
  emit_int_array buf "dg" c.Ilu0.diag;
  emit_int_array buf "cmap" c.Ilu0.csc_map;
  Buffer.add_string buf
    {|static int pos[N > 0 ? N : 1];
/* ax: values of A (CSC, the compiled pattern); v: CSR values of L\U.
   Returns -1 on success, k on a zero pivot in row k. */
int ilu0_factor(const double *restrict ax, double *restrict v) {
#pragma GCC ivdep
  for (int q = 0; q < rp[N]; q++) v[q] = ax[cmap[q]];
  for (int i = 0; i < N; i++) pos[i] = -1;
  for (int i = 0; i < N; i++) {
    for (int p = rp[i]; p < rp[i + 1]; p++) pos[ci[p]] = p;
    for (int p = rp[i]; p < rp[i + 1]; p++) {
      int k = ci[p];
      if (k < i) {
        double piv = v[dg[k]];
        if (piv == 0.0) return k;
        double lik = v[p] / piv;
        v[p] = lik;
        /* pos[] positions within a row are distinct: the scatter is safe */
#pragma GCC ivdep
        for (int q = dg[k] + 1; q < rp[k + 1]; q++)
          if (pos[ci[q]] >= 0) v[pos[ci[q]]] -= lik * v[q];
      }
    }
    for (int p = rp[i]; p < rp[i + 1]; p++) pos[ci[p]] = -1;
  }
  return -1;
}
|};
  Buffer.contents buf
