(** Persistent worker pool of OCaml 5 domains.

    The level-set parallel kernels used to pay [Domain.spawn]/[Domain.join]
    for every numeric call — tens of microseconds per level, destroying the
    compile-once/execute-many amortization the rest of the system is built
    around. This pool spawns its worker domains once (lazily, on the first
    parallel dispatch) and thereafter runs tasks through a low-latency
    level barrier: workers spin briefly on an atomic epoch counter, then
    park on a [Mutex]/[Condition] pair, so an idle pool costs nothing and a
    busy one synchronizes without syscalls in the common case.

    Zero steady-state allocation: [run] allocates nothing on the caller or
    worker domains when the task closure is preallocated (as the kernel
    plans do), so the `plans` Gc gates extend to the parallel paths.

    Sizing is decided in exactly one place: {!default_size}, which reads
    [Domain.recommended_domain_count] unless the [SYMPILER_NDOMAINS]
    environment variable overrides it. Every [?ndomains] default in the
    library resolves here.

    [run] is NOT reentrant and must not be called from two domains at
    once: it is the single orchestration point of a numeric phase. *)

val max_domains : int
(** Hard cap on pool width (worker requests are clamped to it). *)

val parse_ndomains : string option -> int option
(** The [SYMPILER_NDOMAINS] parser, exposed for tests: [Some k] for a
    well-formed positive integer (clamped to {!max_domains}), [None] for
    absent or malformed input. *)

val default_size : unit -> int
(** Pool width used when a caller does not pass [?ndomains]:
    [SYMPILER_NDOMAINS] if set and valid, else
    [Domain.recommended_domain_count ()], clamped to {!max_domains}.
    Read once and cached. *)

val spawned : unit -> int
(** Worker domains spawned so far (0 until the first parallel [run]). *)

val run : nworkers:int -> (int -> unit) -> unit
(** [run ~nworkers task] executes [task 0] on the calling domain and
    [task 1] … [task (nworkers - 1)] on pool workers, returning when all
    have finished (the level barrier). [nworkers <= 1] degrades to a plain
    [task 0] call with no synchronization at all. Missing workers are
    spawned on demand and persist for the process lifetime.

    If any task raises, the first captured exception is re-raised on the
    caller after the barrier; the pool itself survives and remains usable.

    When {!Sympiler_prof.Prof} is enabled, each dispatch records the
    pool counter set (runs, tasks, max workers, per-dispatch imbalance =
    max/mean worker time); a ["pool.run"] trace span brackets the dispatch
    when tracing is on. *)
