let chunk_cost ~cost ~lo ~hi =
  let acc = ref 0.0 in
  for t = lo to hi - 1 do
    acc := !acc +. cost t
  done;
  !acc

(* Equal-count fallback: used when the cost model degenerates (all-zero or
   non-finite total), where "balanced by cost" is meaningless. *)
let equal_counts ~ntasks ~nparts =
  let b = Array.make (nparts + 1) 0 in
  for p = 0 to nparts do
    b.(p) <- p * ntasks / nparts
  done;
  b

let balanced ~ntasks ~nparts ~cost =
  if nparts < 1 then invalid_arg "Partition.balanced: nparts < 1";
  if ntasks < 0 then invalid_arg "Partition.balanced: ntasks < 0";
  let total = chunk_cost ~cost ~lo:0 ~hi:ntasks in
  if total <= 0.0 || not (Float.is_finite total) then
    equal_counts ~ntasks ~nparts
  else begin
    let b = Array.make (nparts + 1) ntasks in
    b.(0) <- 0;
    (* One prefix sweep: boundary [p] lands on the first task index where
       the running cost reaches share p. *)
    let acc = ref 0.0 in
    let p = ref 1 in
    for t = 0 to ntasks - 1 do
      acc := !acc +. cost t;
      while
        !p < nparts && !acc >= total *. float_of_int !p /. float_of_int nparts
      do
        b.(!p) <- t + 1;
        incr p
      done
    done;
    (* Any boundaries the sweep never placed (fp edge cases) close at the
       end; monotonicity is by construction. *)
    for q = !p to nparts - 1 do
      b.(q) <- ntasks
    done;
    b
  end
