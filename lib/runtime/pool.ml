open Sympiler_prof
module Metrics = Sympiler_metrics.Metrics

let max_domains = 64

(* Serving metrics for the pool: dispatch latency distribution, tasks
   executed, and the imbalance of the most recent measured dispatch.
   Registered once at module init; recording is a no-op until
   [Metrics.enable]. *)
let m_dispatch =
  Metrics.histogram "sympiler_pool_dispatch_seconds"
    ~help:"Wall time of one Pool.run dispatch (publish to barrier)"

let m_runs =
  Metrics.counter "sympiler_pool_runs" ~help:"Parallel dispatches through the pool"

let m_tasks =
  Metrics.counter "sympiler_pool_tasks" ~help:"Worker tasks executed across dispatches"

let m_imbalance =
  Metrics.gauge "sympiler_pool_imbalance_pct"
    ~help:"Imbalance of the last measured dispatch (max/mean worker time, %)"

(* Bounded spin before parking: long enough to catch the common "next level
   dispatched immediately" case without burning a timeslice when the
   producer is genuinely idle. *)
let spin_budget = 2048

let parse_ndomains = function
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Some (min k max_domains)
      | _ -> None)

(* The single sizing decision of the library: every [?ndomains] default
   resolves here (see pool.mli). Cached after the first read. *)
let default_size_cache = ref 0

let default_size () =
  if !default_size_cache = 0 then
    default_size_cache :=
      (match parse_ndomains (Sys.getenv_opt "SYMPILER_NDOMAINS") with
      | Some k -> k
      | None -> min max_domains (Domain.recommended_domain_count ()));
  !default_size_cache

(* ------------------------------ Pool state ----------------------------- *)

let noop_task (_ : int) = ()

type state = {
  mutable task : int -> unit; (* published by the epoch bump *)
  mutable nactive : int; (* workers participating in the current epoch *)
  mutable failed : exn option; (* first worker exception of the epoch *)
  mutable stop : bool; (* at_exit shutdown flag *)
  epoch : int Atomic.t; (* bumping it releases [task]/[nactive] *)
  pending : int Atomic.t; (* workers still running the current epoch *)
  m : Mutex.t;
  cv_start : Condition.t; (* workers park here between epochs *)
  cv_done : Condition.t; (* the caller parks here at the barrier *)
  wtimes : float array; (* per-worker task seconds (profiling only) *)
  mutable workers : unit Domain.t list; (* spawned so far, join at exit *)
  mutable nworkers_spawned : int;
}

let st =
  {
    task = noop_task;
    nactive = 0;
    failed = None;
    stop = false;
    epoch = Atomic.make 0;
    pending = Atomic.make 0;
    m = Mutex.create ();
    cv_start = Condition.create ();
    cv_done = Condition.create ();
    wtimes = Array.make max_domains 0.0;
    workers = [];
    nworkers_spawned = 0;
  }

let spawned () = st.nworkers_spawned

(* Worker [wid] (1-based; the caller is worker 0). Spin on the epoch, then
   park; on wake run the task if this epoch includes us, decrement the
   barrier, and go back to waiting. Exceptions are captured — the pool must
   survive any task. *)
let worker_loop wid start_epoch =
  let my_epoch = ref start_epoch in
  let running = ref true in
  while !running do
    let budget = ref spin_budget in
    while Atomic.get st.epoch = !my_epoch && !budget > 0 do
      decr budget;
      Domain.cpu_relax ()
    done;
    if Atomic.get st.epoch = !my_epoch then begin
      Mutex.lock st.m;
      while Atomic.get st.epoch = !my_epoch do
        Condition.wait st.cv_start st.m
      done;
      Mutex.unlock st.m
    end;
    my_epoch := Atomic.get st.epoch;
    if st.stop then running := false
    else if wid < st.nactive then begin
      (if Prof.enabled () then begin
         let t0 = Prof.now_seconds () in
         (try st.task wid with e -> if st.failed = None then st.failed <- Some e);
         st.wtimes.(wid) <- Prof.now_seconds () -. t0
       end
       else
         try st.task wid with e -> if st.failed = None then st.failed <- Some e);
      (* Last worker through the barrier wakes a possibly-parked caller. *)
      if Atomic.fetch_and_add st.pending (-1) = 1 then begin
        Mutex.lock st.m;
        Condition.signal st.cv_done;
        Mutex.unlock st.m
      end
    end
  done

(* Lazy spawning: grow the pool to serve [nworkers]-wide dispatches. The
   shutdown hook is installed with the first worker so a purely sequential
   process never touches [at_exit]. *)
let shutdown () =
  if st.nworkers_spawned > 0 then begin
    st.stop <- true;
    Mutex.lock st.m;
    Atomic.incr st.epoch;
    Condition.broadcast st.cv_start;
    Mutex.unlock st.m;
    List.iter Domain.join st.workers;
    st.workers <- [];
    st.nworkers_spawned <- 0
  end

let ensure nworkers =
  if st.nworkers_spawned < nworkers - 1 then begin
    if st.nworkers_spawned = 0 then at_exit shutdown;
    let e = Atomic.get st.epoch in
    for wid = st.nworkers_spawned + 1 to nworkers - 1 do
      st.workers <- Domain.spawn (fun () -> worker_loop wid e) :: st.workers
    done;
    st.nworkers_spawned <- nworkers - 1
  end

(* Imbalance of the dispatch just finished: max/mean worker seconds, as an
   integer percentage (100 = perfectly balanced). *)
let record_dispatch nworkers =
  let k = Prof.counters in
  k.Prof.pool_runs <- k.Prof.pool_runs + 1;
  k.Prof.pool_tasks <- k.Prof.pool_tasks + nworkers;
  if nworkers > k.Prof.pool_max_workers then
    k.Prof.pool_max_workers <- nworkers;
  let sum = ref 0.0 and mx = ref 0.0 in
  for w = 0 to nworkers - 1 do
    sum := !sum +. st.wtimes.(w);
    if st.wtimes.(w) > !mx then mx := st.wtimes.(w)
  done;
  if !sum > 0.0 then begin
    let pct =
      int_of_float (100.0 *. !mx *. float_of_int nworkers /. !sum +. 0.5)
    in
    if pct > k.Prof.pool_imbalance_pct then k.Prof.pool_imbalance_pct <- pct;
    Metrics.set m_imbalance (float_of_int pct)
  end

let run ~nworkers task =
  let nw = if nworkers > max_domains then max_domains else nworkers in
  if nw <= 1 then task 0
  else begin
    ensure nw;
    Sympiler_trace.Trace.begin_span "pool.run";
    let t_dispatch = if Metrics.enabled () then Prof.now_seconds () else 0.0 in
    st.task <- task;
    st.nactive <- nw;
    st.failed <- None;
    Atomic.set st.pending (nw - 1);
    (* Publish under the mutex so a parked worker cannot miss the wakeup
       between its epoch re-check and its [Condition.wait]. *)
    Mutex.lock st.m;
    Atomic.incr st.epoch;
    Condition.broadcast st.cv_start;
    Mutex.unlock st.m;
    let caller_failed =
      if Prof.enabled () then begin
        let t0 = Prof.now_seconds () in
        let r = try task 0; None with e -> Some e in
        st.wtimes.(0) <- Prof.now_seconds () -. t0;
        r
      end
      else try task 0; None with e -> Some e
    in
    (* The barrier: bounded spin, then park on [cv_done]. *)
    let budget = ref spin_budget in
    while Atomic.get st.pending > 0 && !budget > 0 do
      decr budget;
      Domain.cpu_relax ()
    done;
    if Atomic.get st.pending > 0 then begin
      Mutex.lock st.m;
      while Atomic.get st.pending > 0 do
        Condition.wait st.cv_done st.m
      done;
      Mutex.unlock st.m
    end;
    st.task <- noop_task (* do not root the plan between dispatches *);
    (* All workers are parked past the barrier: the quiescent point where
       worker-domain Prof cells can be folded into the global record. *)
    if Prof.enabled () then begin
      record_dispatch nw;
      Prof.merge_cells ()
    end;
    if Metrics.enabled () then begin
      Metrics.observe m_dispatch (Prof.now_seconds () -. t_dispatch);
      Metrics.inc m_runs 1;
      Metrics.inc m_tasks nw
    end;
    Sympiler_trace.Trace.end_span ();
    match caller_failed with
    | Some e -> raise e
    | None -> (
        match st.failed with
        | Some e ->
            st.failed <- None;
            raise e
        | None -> ())
  end
