(** Cost-balanced static partitioning of a task range across workers.

    The parallel kernels split each level set into one contiguous chunk per
    worker. A naive equal-count split ignores that supernodes (and rows)
    have wildly different flop counts; the partitions here are computed
    once, at plan-construction time, from the symbolic per-task flop
    estimates, so the numeric phase carries no balancing logic at all. *)

val balanced : ntasks:int -> nparts:int -> cost:(int -> float) -> int array
(** [balanced ~ntasks ~nparts ~cost] returns boundaries [b] of length
    [nparts + 1] with [b.(0) = 0], [b.(nparts) = ntasks], nondecreasing:
    part [p] owns tasks [\[b.(p), b.(p+1))]. Boundary [p] is placed at the
    first task where the cost prefix reaches [p/nparts] of the total, so
    every part's cost is within one task of the ideal share. Parts may be
    empty (zero-cost tail). Raises [Invalid_argument] when [nparts < 1] or
    [ntasks < 0]; a non-finite or all-zero total falls back to equal
    counts. *)

val chunk_cost : cost:(int -> float) -> lo:int -> hi:int -> float
(** Total cost of tasks [\[lo, hi)] — the quantity [balanced] equalizes. *)
