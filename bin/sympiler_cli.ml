(* Command-line front end: read a matrix (Matrix Market) or pick a suite
   problem, run Sympiler's symbolic analysis, and emit specialized C code or
   an analysis report.

     sympiler_cli analyze  --matrix m.mtx
     sympiler_cli cholesky --matrix m.mtx -o chol.c
     sympiler_cli trisolve --matrix m.mtx --rhs-fill 0.03 -o tri.c
     sympiler_cli analyze  --problem ecology2
     sympiler_cli steady   --problem ecology2 --repeat 100
     sympiler_cli steady   --problem ecology2 --ndomains 4
     sympiler_cli updown   --problem ecology2 --repeat 200 --sigma 0.5
     sympiler_cli explain  --problem ecology2 --json
     sympiler_cli steady   --problem ecology2 --trace trace.json *)

open Cmdliner
open Sympiler_sparse
open Sympiler_symbolic

(* --ordering values; `Given has no CLI spelling. Coerced into
   [Sympiler.ordering] at the compile calls. *)
let ordering_of_flag :
    [ `Natural | `Rcm | `Amd | `Min_degree ] -> Sympiler.ordering =
 fun o -> (o :> Sympiler.ordering)

let ordering_flag_name = function
  | `Natural -> "natural"
  | `Rcm -> "rcm"
  | `Amd -> "amd"
  | `Min_degree -> "min-degree"

(* For the analysis-only path: permute the full matrix up front. *)
let apply_ordering ordering (a : Csc.t) : Csc.t =
  match ordering with
  | `Natural -> a
  | `Rcm -> Perm.symmetric_permute (Ordering.rcm a) a
  | `Amd -> Perm.symmetric_permute (Ordering.amd a) a
  | `Min_degree -> Perm.symmetric_permute (Ordering.min_degree a) a

let load ~matrix ~problem =
  match (matrix, problem) with
  | Some path, _ ->
      let a = Matrix_market.read path in
      if a.Csc.nrows <> a.Csc.ncols then failwith "matrix must be square";
      a
  | None, Some name ->
      (Sympiler.Suite.problem
         (Generators.problem_by_name name).Generators.id)
        .Sympiler.Suite.a_full
  | None, None -> failwith "pass --matrix FILE or --problem NAME"

(* With --profile, run [f] under the observability layer and print the
   phase/counter table to stderr (stdout stays clean for emitted C). *)
let with_profile profile f =
  if not profile then f ()
  else begin
    Sympiler_prof.Prof.reset ();
    Sympiler_prof.Prof.enable ();
    let r = f () in
    Sympiler_prof.Prof.disable ();
    Printf.eprintf "%s" (Sympiler_prof.Prof.table ());
    r
  end

(* With --trace FILE, run [f] with structured tracing on and write the
   Chrome trace-event JSON (Perfetto-loadable) afterwards. Available on
   every subcommand, composing with --profile. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Sympiler_trace.Trace.enable ();
      let r = f () in
      Sympiler_trace.Trace.disable ();
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Sympiler_trace.Trace.to_chrome_json ()));
      Printf.eprintf "wrote %s (%d spans%s)\n" path
        (Sympiler_trace.Trace.span_count ())
        (let d = Sympiler_trace.Trace.dropped_spans () in
         if d = 0 then "" else Printf.sprintf ", %d dropped" d);
      r

(* With --metrics FILE, run [f] with the metrics registry collecting and
   write a snapshot afterwards — OpenMetrics text exposition by default,
   the JSON snapshot when FILE ends in .json. Available on every
   subcommand, composing with --profile and --trace. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      Sympiler.Metrics.enable ();
      let r = f () in
      let body =
        if Filename.check_suffix path ".json" then
          Sympiler_prof.Prof.Json.to_string (Sympiler.Metrics.to_json ())
        else Sympiler.Metrics.to_openmetrics ()
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc body);
      Printf.eprintf "wrote %s (%d bytes)\n" path (String.length body);
      r

let output o s =
  match o with
  | None -> print_string s
  | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s);
      Printf.eprintf "wrote %s (%d bytes)\n" path (String.length s)

(* ---- analyze ---- *)

let analyze matrix problem ordering profile trace metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  let a = load ~matrix ~problem in
  let t0 = Sympiler_prof.Prof.now_seconds () in
  let a = apply_ordering ordering a in
  let al = Csc.lower a in
  let fill = Fill_pattern.analyze al in
  let sn =
    Supernodes.detect_etree ~counts:fill.Fill_pattern.counts
      ~parent:fill.Fill_pattern.parent ()
  in
  let dt = Sympiler_prof.Prof.now_seconds () -. t0 in
  Printf.printf "n                : %d\n" a.Csc.ncols;
  Printf.printf "ordering         : %s\n" (ordering_flag_name ordering);
  Printf.printf "nnz(A)           : %d\n" (Csc.nnz a);
  Printf.printf "nnz(L)           : %d (fill ratio %.2f)\n"
    (Csc.nnz fill.Fill_pattern.l_pattern)
    (float_of_int (Csc.nnz fill.Fill_pattern.l_pattern)
    /. float_of_int (Csc.nnz al));
  Printf.printf "factor flops     : %.3e\n" (Fill_pattern.flops fill);
  Printf.printf "supernodes       : %d (avg width %.2f, max %d)\n"
    (Supernodes.nsuper sn) (Supernodes.avg_width sn)
    (Array.fold_left max 0 (Supernodes.widths sn));
  Printf.printf "etree roots      : %d\n"
    (List.length (Etree.roots fill.Fill_pattern.parent));
  Printf.printf "symbolic time    : %.1f ms\n" (dt *. 1e3);
  0

(* ---- cholesky codegen ---- *)

let cholesky matrix problem ordering out profile trace metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  let a = load ~matrix ~problem in
  let al = Csc.lower a in
  let t =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~ordering:(ordering_of_flag ordering) ())
      al
  in
  Printf.eprintf "variant: %s, nnz(L)=%d, symbolic %.1f ms\n"
    (match t.Sympiler.Cholesky.variant with
    | Sympiler.Cholesky.Supernodal -> "supernodal"
    | Sympiler.Cholesky.Simplicial -> "simplicial")
    t.Sympiler.Cholesky.nnz_l
    (t.Sympiler.Cholesky.symbolic_seconds *. 1e3);
  output out (Sympiler.Cholesky.c_code t);
  0

(* ---- trisolve codegen ---- *)

let trisolve matrix problem rhs_fill out profile trace metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  let a = load ~matrix ~problem in
  let l =
    if Csc.is_lower_triangular a then a
    else begin
      Printf.eprintf "input not triangular: factoring and using its L\n";
      let t = Sympiler.Cholesky.compile (Csc.lower a) in
      Sympiler.Cholesky.factor t (Csc.lower a)
    end
  in
  let b = Generators.sparse_rhs ~seed:1 ~n:l.Csc.ncols ~fill:rhs_fill () in
  let t = Sympiler.Trisolve.compile (l, b) in
  Printf.eprintf "reach-set: %d of %d columns, symbolic %.1f ms\n"
    (Array.length t.Sympiler.Trisolve.reach)
    l.Csc.ncols
    (t.Sympiler.Trisolve.symbolic_seconds *. 1e3);
  output out (Sympiler.Trisolve.c_code t);
  0

(* ---- steady-state mode ---- *)

(* Demonstrate the compile-once / execute-many regime on one matrix: one
   cached compile + plan creation (the first call), then [repeat] in-place
   refactorizations into the same plan, reporting steady-state time per
   call, the GC minor-heap words each call allocates (0 = allocation-free),
   and the compilation cache's behaviour on a recompile. *)
let steady matrix problem ordering repeat ndomains engine profile trace metrics
    =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  (* Per-call percentiles come from the plan's latency histogram, so the
     registry collects for the duration of the loop even without
     --metrics. *)
  Sympiler.Metrics.enable ();
  let now = Sympiler_prof.Prof.now_seconds in
  let a = load ~matrix ~problem in
  let al = Csc.lower a in
  let ord = ordering_of_flag ordering in
  let t0 = now () in
  let opts = Sympiler.Options.make ~ordering:ord ~cache:true () in
  let h = Sympiler.Cholesky.compile ~opts al in
  let p = Sympiler.Cholesky.plan ?ndomains ~engine h in
  ignore (Sympiler.Cholesky.execute_ip p al);
  let first = now () -. t0 in
  let reps = max 1 repeat in
  let w0 = Gc.minor_words () in
  let t0 = now () in
  for _ = 1 to reps do
    ignore (Sympiler.Cholesky.execute_ip p al)
  done;
  let per_call = (now () -. t0) /. float_of_int reps in
  let words =
    int_of_float ((Gc.minor_words () -. w0) /. float_of_int reps)
  in
  let h' = Sympiler.Cholesky.compile ~opts al in
  let stats = Sympiler.Cholesky.cache_stats () in
  Printf.printf "n                : %d\n" a.Csc.ncols;
  Printf.printf "ordering         : %s\n" (ordering_flag_name ordering);
  Printf.printf "nnz(L)           : %d\n" h.Sympiler.Cholesky.nnz_l;
  Printf.printf "variant          : %s\n"
    (match h.Sympiler.Cholesky.variant with
    | Sympiler.Cholesky.Supernodal -> "supernodal"
    | Sympiler.Cholesky.Simplicial -> "simplicial");
  Printf.printf "engine           : %s\n"
    (match (engine, p.Sympiler.Cholesky.native) with
    | `Ocaml, _ -> "ocaml"
    | (`Native | `Native_novec), Some e ->
        Printf.sprintf "%s (compiled C, %s in %.1f ms)"
          (if engine = `Native then "native" else "native-novec")
          (match e.Sympiler.Native_engine.nk.Sympiler.Native.origin with
          | Sympiler.Native.Compiled -> "cc+dlopen"
          | Sympiler.Native.Disk_cache -> "dlopen of cached .so"
          | Sympiler.Native.Memory_cache -> "in-process cache hit")
          (e.Sympiler.Native_engine.nk.Sympiler.Native.compile_seconds *. 1e3)
    | (`Native | `Native_novec), None ->
        "ocaml (native requested, but no C compiler - fell back)");
  Printf.printf "first call       : %.3f ms (compile + plan + factor)\n"
    (first *. 1e3);
  Printf.printf "steady state     : %.3f ms/call over %d calls\n"
    (per_call *. 1e3) reps;
  let lat = Sympiler.Cholesky.plan_latency p in
  Printf.printf "latency p50/p99  : %.3f / %.3f ms (max %.3f ms, %d recorded)\n"
    (lat.Sympiler.Metrics.p50 *. 1e3)
    (lat.Sympiler.Metrics.p99 *. 1e3)
    (lat.Sympiler.Metrics.max *. 1e3)
    lat.Sympiler.Metrics.count;
  Printf.printf "minor words/call : %d%s\n" words
    (if words = 0 then " (allocation-free)" else "");
  Printf.printf "recompile hit    : %b (cache %d hits / %d misses)\n"
    (h' == h) stats.Sympiler.Plan_cache.hits stats.Sympiler.Plan_cache.misses;
  (match ndomains with
  | None -> ()
  | Some nd ->
      Printf.printf "parallel         : ndomains=%d (pool domains spawned: %d)\n"
        nd
        (Sympiler.Runtime.Pool.spawned ()));
  0

(* ---- explain ---- *)

(* Symbolic "explain" report for one compiled handle: fill, etree,
   histograms, level sets, the transformation decision log, and predicted
   vs executed flops (one numeric execution runs under profiling so the
   executed counter is populated). *)
let explain matrix problem kernel ordering rhs_fill json trace metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  let a = load ~matrix ~problem in
  let was_on = Sympiler_prof.Prof.enabled () in
  Sympiler_prof.Prof.reset ();
  Sympiler_prof.Prof.enable ();
  let report =
    match kernel with
    | `Cholesky ->
        let al = Csc.lower a in
        let t =
          Sympiler.Cholesky.compile
            ~opts:
              (Sympiler.Options.make ~ordering:(ordering_of_flag ordering) ())
            al
        in
        (* Populate the executed-flops counter; a numeric breakdown (e.g.
           indefinite values) still leaves the symbolic report valid. *)
        (try ignore (Sympiler.Cholesky.factor t al)
         with
        | Sympiler_kernels.Dense_blas.Not_positive_definite _
        | Sympiler_kernels.Cholesky_ref.Not_positive_definite _ ->
            Printf.eprintf
              "note: numeric factorization failed (not PD); executed flops \
               are partial\n");
        Sympiler.Explain.cholesky t
    | `Trisolve ->
        (* A generic fill-reducing ordering would break L's triangularity,
           so for the solve the ordering is applied to A before the factor
           whose L is compiled (the handle itself stays natural). *)
        let a = apply_ordering ordering a in
        let l =
          if Csc.is_lower_triangular a then a
          else begin
            Printf.eprintf "input not triangular: factoring and using its L\n";
            let t = Sympiler.Cholesky.compile (Csc.lower a) in
            Sympiler.Cholesky.factor t (Csc.lower a)
          end
        in
        let b =
          Generators.sparse_rhs ~seed:1 ~n:l.Csc.ncols ~fill:rhs_fill ()
        in
        let t = Sympiler.Trisolve.compile (l, b) in
        ignore (Sympiler.Trisolve.solve t b);
        Sympiler.Explain.trisolve t
  in
  if not was_on then Sympiler_prof.Prof.disable ();
  if json then print_endline (Sympiler.Explain.to_json report)
  else print_string (Sympiler.Explain.to_table report);
  0

(* ---- pipeline ---- *)

(* Compile a whole solver DAG through one shared symbolic analysis and
   drive the fused plan against the staged baseline: per-call time for
   both executors, allocation per fused apply, bitwise identity, and the
   analysis ledger. With -o, also emit the fused C kernel. *)

let parse_stages (family : Sympiler.Pipeline.family option) (s : string) :
    Sympiler.Pipeline.stage_spec list =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match (t, family) with
         | "factor", Some f -> Sympiler.Pipeline.Factor f
         | "factor", None ->
             failwith "--stages factor requires --family (not none)"
         | "lower", _ -> Sympiler.Pipeline.Lower_solve
         | "diag", _ -> Sympiler.Pipeline.Diag_solve
         | "upper", _ -> Sympiler.Pipeline.Upper_solve
         | "solve", _ -> Sympiler.Pipeline.Solve
         | "spmv", _ -> Sympiler.Pipeline.Spmv
         | _ ->
             failwith
               (Printf.sprintf
                  "unknown stage %S (factor, lower, diag, upper, solve, spmv)"
                  t))

let pipeline matrix problem family stages ordering repeat out profile trace
    metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  let module Pl = Sympiler.Pipeline in
  let now = Sympiler_prof.Prof.now_seconds in
  let a = load ~matrix ~problem in
  let square =
    match family with Some (`Lu | `Ilu0) -> true | _ -> false
  in
  let input = if square then a else Csc.lower a in
  let dag = Pl.of_stages (parse_stages family stages) in
  let t =
    Pl.compile
      ~opts:
        (Sympiler.Options.make ~ordering:(ordering_of_flag ordering)
           ~cache:true ())
      dag input
  in
  print_string (Pl.describe t);
  let p = Pl.plan t in
  let has_factor =
    List.exists
      (function Pl.Factor _ -> true | _ -> false)
      (Pl.dag_of t)
  in
  if has_factor then Pl.factor_ip p input;
  let n = input.Csc.ncols in
  let b = Array.init n (fun i -> sin (0.01 *. float_of_int i)) in
  let xf = Array.copy (Pl.execute_ip p b) in
  let bitwise = xf = Pl.staged_execute_ip p b in
  let reps = max 1 repeat in
  let time f =
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    (now () -. t0) /. float_of_int reps
  in
  let fused_s = time (fun () -> ignore (Pl.execute_ip p b)) in
  let staged_s = time (fun () -> ignore (Pl.staged_execute_ip p b)) in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Pl.execute_ip p b)
  done;
  let words = int_of_float ((Gc.minor_words () -. w0) /. float_of_int reps) in
  Printf.printf "  %-22s %.3f ms/call over %d calls\n" "fused apply"
    (fused_s *. 1e3) reps;
  Printf.printf "  %-22s %.3f ms/call (%.2fx)\n" "staged baseline"
    (staged_s *. 1e3)
    (staged_s /. Float.max fused_s 1e-12);
  Printf.printf "  %-22s %d%s\n" "minor words/apply" words
    (if words = 0 then " (allocation-free)" else "");
  Printf.printf "  %-22s %b\n" "fused == staged" bitwise;
  (match out with
  | None -> ()
  | Some _ -> output out (Pl.c_code t));
  if bitwise then 0 else 1

(* ---- rank update / downdate ---- *)

(* Demonstrate first-class rank-1 update/downdate on a plan: one compile +
   factor, then [repeat] canceling update/downdate pairs through
   update_ip/downdate_ip, reporting the per-operation time against a full
   refactorization (and the resulting crossover rank), allocation per
   pair, factor drift over the stream, the memoized etree-path counters,
   the rollback contract on a rejected downdate, and one incremental
   column refactorization. *)
let updown matrix problem ordering repeat sigma col profile trace metrics =
  with_metrics metrics @@ fun () ->
  with_trace trace @@ fun () ->
  with_profile profile @@ fun () ->
  let module C = Sympiler.Cholesky in
  let now = Sympiler_prof.Prof.now_seconds in
  let a = load ~matrix ~problem in
  let al = Csc.lower a in
  let n = al.Csc.ncols in
  let ord = ordering_of_flag ordering in
  let h =
    C.compile ~opts:(Sympiler.Options.make ~ordering:ord ~cache:true ()) al
  in
  let p = C.plan h in
  ignore (C.execute_ip p al);
  let l = C.plan_factor p in
  let j = match col with Some j -> j | None -> n / 3 in
  if j < 0 || j >= n then failwith "--col out of range";
  (* update_ip takes w in natural order; build a legal one from factor
     column j (pattern subset holds by construction), mapping its pattern
     back through the ordering when one was applied. *)
  let w =
    let lo = l.Csc.colptr.(j) and hi = l.Csc.colptr.(j + 1) in
    match h.C.ord.Sympiler.o_perm with
    | None -> Sympiler_kernels.Rank_update.vector_like l ~j ~scale:0.2
    | Some perm ->
        let pairs =
          Array.init (hi - lo) (fun k ->
              (perm.(l.Csc.rowind.(lo + k)), 0.2 *. l.Csc.values.(lo + k)))
        in
        Array.sort compare pairs;
        {
          Vector.n;
          indices = Array.map fst pairs;
          values = Array.map snd pairs;
        }
  in
  let reps = max 1 repeat in
  (* Partial applications fix ?sigma once: the option cell is built here,
     not per call, keeping the timed loop allocation-free. *)
  let update = C.update_ip p ~sigma in
  let downdate = C.downdate_ip p ~sigma in
  (* warm the path table, then time the canceling pair stream (profiling
     untouched: counter bumps would show up in the allocation figure) *)
  update w;
  downdate w;
  let v0 = Array.copy l.Csc.values in
  let w0 = Gc.minor_words () in
  let t0 = now () in
  for _ = 1 to reps do
    update w;
    downdate w
  done;
  let pair_s = (now () -. t0) /. float_of_int reps in
  let words =
    int_of_float ((Gc.minor_words () -. w0) /. float_of_int reps)
  in
  let drift =
    let scale =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 v0
    in
    let d = ref 0.0 in
    Array.iteri
      (fun i v ->
        d := Float.max !d (Float.abs (v -. l.Csc.values.(i)) /. scale))
      v0;
    !d
  in
  let refactor_s =
    let t0 = now () in
    for _ = 1 to reps do
      ignore (C.execute_ip p al)
    done;
    (now () -. t0) /. float_of_int reps
  in
  (* a short profiled stream exposes the per-jmin path memoization: the
     path was computed once during warmup, so every profiled pair hits *)
  let was_on = Sympiler_prof.Prof.enabled () in
  Sympiler_prof.Prof.enable ();
  let c = Sympiler_prof.Prof.counters in
  let h0 = c.Sympiler_prof.Prof.updown_path_hits
  and m0 = c.Sympiler_prof.Prof.updown_path_misses
  and e0 = c.Sympiler_prof.Prof.updown_escalations in
  for _ = 1 to 10 do
    update w;
    downdate w
  done;
  let path_hits = c.Sympiler_prof.Prof.updown_path_hits - h0
  and path_misses = c.Sympiler_prof.Prof.updown_path_misses - m0
  and escalations = c.Sympiler_prof.Prof.updown_escalations - e0 in
  if not was_on then Sympiler_prof.Prof.disable ();
  (* rollback contract: a downdate violent enough to destroy positive
     definiteness must raise and leave the factor bitwise intact *)
  let before = Array.copy l.Csc.values in
  let rollback_ok =
    (try
       C.downdate_ip p ~sigma:1e9 w;
       false
     with Sympiler_kernels.Rank_update.Not_positive_definite _ -> true)
    && before = l.Csc.values
  in
  (* one incremental refactorization: bump a diagonal entry and recompute
     only the rows its etree path reaches *)
  ignore (C.execute_ip p al);
  ignore (C.refactor_cols_ip p al);
  let al2 =
    let values = Array.copy al.Csc.values in
    let c = n / 2 in
    for q = al.Csc.colptr.(c) to al.Csc.colptr.(c + 1) - 1 do
      if al.Csc.rowind.(q) = c then values.(q) <- values.(q) *. 1.5
    done;
    { al with Csc.values }
  in
  let incr_rows = C.refactor_cols_ip p al2 in
  Printf.printf "n                : %d\n" n;
  Printf.printf "ordering         : %s\n" (ordering_flag_name ordering);
  Printf.printf "nnz(L)           : %d\n" h.C.nnz_l;
  Printf.printf "update column    : %d (|w| = %d, sigma = %g)\n" j
    (Array.length w.Vector.indices)
    sigma;
  Printf.printf "update+downdate  : %.3f us/pair over %d pairs\n"
    (pair_s *. 1e6) reps;
  Printf.printf "refactorization  : %.3f us/call\n" (refactor_s *. 1e6);
  Printf.printf "crossover rank   : %.0f updates per refactorization\n"
    (Float.ceil (refactor_s /. Float.max (pair_s /. 2.0) 1e-12));
  Printf.printf "minor words/pair : %d%s\n" words
    (if words = 0 then " (allocation-free)" else "");
  Printf.printf "drift (%d pairs) : %.2e (relative)\n" reps drift;
  Printf.printf
    "path table       : %d hits / %d misses, %d escalations (10 profiled \
     pairs)\n"
    path_hits path_misses escalations;
  Printf.printf "rollback intact  : %b (rejected downdate left L bitwise)\n"
    rollback_ok;
  Printf.printf "incremental      : %d of %d rows recomputed for one \
                 diagonal bump\n"
    incr_rows n;
  if rollback_ok then 0 else 1

(* ---- stats ---- *)

(* Run a representative compile-once / execute-many workload (a cached
   Cholesky compile, [repeat] in-place refactorizations, then a triangular
   solve plan driven the same way) with the metrics registry on, and print
   the resulting snapshot: an aligned table by default, the OpenMetrics
   text exposition, or the JSON snapshot. *)
let stats matrix problem ordering repeat ndomains engine format trace =
  with_trace trace @@ fun () ->
  Sympiler.Metrics.enable ();
  let a = load ~matrix ~problem in
  let al = Csc.lower a in
  let ord = ordering_of_flag ordering in
  let reps = max 1 repeat in
  let h =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~ordering:ord ~cache:true ())
      al
  in
  let p = Sympiler.Cholesky.plan ?ndomains ~engine h in
  for _ = 1 to reps do
    ignore (Sympiler.Cholesky.execute_ip p al)
  done;
  let l = Sympiler.Cholesky.factor h al in
  let b = Generators.sparse_rhs ~seed:1 ~n:l.Csc.ncols ~fill:0.03 () in
  let ts = Sympiler.Trisolve.compile (l, b) in
  let tp = Sympiler.Trisolve.plan ?ndomains ~engine ts in
  for _ = 1 to reps do
    ignore (Sympiler.Trisolve.execute_ip tp b)
  done;
  Sympiler.Metrics.sample_process ();
  (match format with
  | `Table -> print_string (Sympiler.Metrics.to_table ())
  | `Json ->
      print_endline
        (Sympiler_prof.Prof.Json.to_string (Sympiler.Metrics.to_json ()))
  | `Openmetrics -> print_string (Sympiler.Metrics.to_openmetrics ()));
  0

(* ---- cmdliner wiring ---- *)

let matrix_arg =
  Arg.(value & opt (some string) None & info [ "matrix"; "m" ] ~doc:"Matrix Market file")

let problem_arg =
  Arg.(value & opt (some string) None & info [ "problem"; "p" ] ~doc:"Suite problem name (Table 2)")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file (default stdout)")

let rhs_fill_arg =
  Arg.(value & opt float 0.03 & info [ "rhs-fill" ] ~doc:"RHS fill fraction")

let ordering_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("natural", `Natural);
             ("rcm", `Rcm);
             ("amd", `Amd);
             ("min-degree", `Min_degree);
           ])
        `Natural
    & info [ "ordering" ]
        ~doc:
          "Fill-reducing ordering applied as part of the symbolic stage: \
           $(docv) is one of natural, rcm, amd, min-degree."
        ~docv:"ORD")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Print phase timings and kernel counters to stderr")

let repeat_arg =
  Arg.(
    value & opt int 100
    & info [ "repeat"; "n" ] ~doc:"Steady-state refactorization count")

let ndomains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "ndomains" ]
        ~doc:
          "Execute through the persistent domain pool with $(docv) domains \
           (default: the sequential plan). Results are bitwise-identical \
           either way."
        ~docv:"N")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("ocaml", `Ocaml);
             ("native", `Native);
             ("native-novec", `Native_novec);
           ])
        `Ocaml
    & info [ "engine" ]
        ~doc:
          "Numeric executor: $(b,ocaml) (default), $(b,native) (the emitted \
           C compiled to a shared object and called in place), or \
           $(b,native-novec) (native with vectorize annotations stripped). \
           The native engines fall back to ocaml when no C compiler is \
           found."
        ~docv:"ENGINE")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Write a Chrome trace-event JSON (Perfetto-loadable) to $(docv)"
        ~docv:"FILE")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:
          "Collect runtime metrics during the command and write a snapshot \
           to $(docv): OpenMetrics text exposition, or the JSON snapshot \
           when $(docv) ends in .json"
        ~docv:"FILE")

let format_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("table", `Table);
             ("json", `Json);
             ("openmetrics", `Openmetrics);
           ])
        `Table
    & info [ "format"; "f" ]
        ~doc:
          "Output format: $(b,table) (default), $(b,json), or \
           $(b,openmetrics)"
        ~docv:"FMT")

let sigma_arg =
  Arg.(
    value & opt float 0.5
    & info [ "sigma" ]
        ~doc:"Rank-1 coefficient: each pair applies A +/- $(docv) w w^T"
        ~docv:"S")

let col_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "col" ]
        ~doc:
          "Factor column whose pattern seeds the update vector (default \
           n/3); its pattern subset makes the update legal by \
           construction."
        ~docv:"J")

let kernel_arg =
  Arg.(
    value
    & opt (enum [ ("cholesky", `Cholesky); ("trisolve", `Trisolve) ]) `Cholesky
    & info [ "kernel"; "k" ] ~doc:"Kernel to explain: cholesky or trisolve")

let json_arg =
  Arg.(
    value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout")

let family_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("cholesky", Some `Cholesky);
             ("ldlt", Some `Ldlt);
             ("lu", Some `Lu);
             ("ic0", Some `Ic0);
             ("ilu0", Some `Ilu0);
             ("none", None);
           ])
        (Some `Cholesky)
    & info [ "family" ]
        ~doc:
          "Factorization family resolving the DAG's factor and solve \
           stages: cholesky (default), ldlt, lu, ic0, ilu0, or none (a \
           factorless chain running on the triangular input itself)."
        ~docv:"FAM")

let stages_arg =
  Arg.(
    value
    & opt string "factor,solve"
    & info [ "stages" ]
        ~doc:
          "Comma-separated pipeline stages, execution order: factor, \
           lower, diag, upper, solve, spmv (default factor,solve)."
        ~docv:"STAGES")

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Report symbolic analysis of a matrix")
    Term.(
      const analyze $ matrix_arg $ problem_arg $ ordering_arg $ profile_arg
      $ trace_arg $ metrics_arg)

let steady_cmd =
  Cmd.v
    (Cmd.info "steady"
       ~doc:
         "Measure steady-state Cholesky refactorization through a reusable \
          plan (compile once, execute many)")
    Term.(
      const steady $ matrix_arg $ problem_arg $ ordering_arg $ repeat_arg
      $ ndomains_arg $ engine_arg $ profile_arg $ trace_arg $ metrics_arg)

let cholesky_cmd =
  Cmd.v (Cmd.info "cholesky" ~doc:"Emit specialized Cholesky C code")
    Term.(
      const cholesky $ matrix_arg $ problem_arg $ ordering_arg $ out_arg
      $ profile_arg $ trace_arg $ metrics_arg)

let trisolve_cmd =
  Cmd.v (Cmd.info "trisolve" ~doc:"Emit specialized triangular-solve C code")
    Term.(
      const trisolve $ matrix_arg $ problem_arg $ rhs_fill_arg $ out_arg
      $ profile_arg $ trace_arg $ metrics_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a compilation: fill, etree, histograms, level sets, the \
          transformation decision log, predicted vs executed flops")
    Term.(
      const explain $ matrix_arg $ problem_arg $ kernel_arg $ ordering_arg
      $ rhs_fill_arg $ json_arg $ trace_arg $ metrics_arg)

let updown_cmd =
  Cmd.v
    (Cmd.info "updown"
       ~doc:
         "Drive rank-1 update/downdate through a reusable plan: canceling \
          update/downdate pairs against a full refactorization, the \
          crossover rank, allocation, drift, path-table counters, and the \
          rollback contract")
    Term.(
      const updown $ matrix_arg $ problem_arg $ ordering_arg $ repeat_arg
      $ sigma_arg $ col_arg $ profile_arg $ trace_arg $ metrics_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a representative compile-once / execute-many workload with \
          metrics collection on and print the registry snapshot (table, \
          JSON, or OpenMetrics)")
    Term.(
      const stats $ matrix_arg $ problem_arg $ ordering_arg $ repeat_arg
      $ ndomains_arg $ engine_arg $ format_arg $ trace_arg)

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Compile a whole solver DAG through one shared symbolic analysis \
          and race the fused plan against the staged baseline (optionally \
          emitting the fused C kernel with -o)")
    Term.(
      const pipeline $ matrix_arg $ problem_arg $ family_arg $ stages_arg
      $ ordering_arg $ repeat_arg $ out_arg $ profile_arg $ trace_arg
      $ metrics_arg)

let () =
  let doc = "Sympiler: sparsity-specific code generation for sparse kernels" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sympiler_cli" ~doc)
          [
            analyze_cmd;
            cholesky_cmd;
            trisolve_cmd;
            steady_cmd;
            updown_cmd;
            explain_cmd;
            stats_cmd;
            pipeline_cmd;
          ]))
